"""Runtime concurrency sanitizer: lock-order and lockset discipline.

The static flow checkers (:mod:`repro.analysis.flow`) prove what the
*resolved* call graph can show; this module watches what actually
happens. With ``REPRO_SANITIZE=1`` (or an explicit :func:`install`),
every lock created by ``repro`` code is wrapped in a
:class:`SanitizedLock` that maintains a per-thread held-lock stack and
a global lock-acquisition-order graph keyed by each lock's *creation
site* (``module.qualname:lineno`` — the static analogue of a lock
identity). Two disciplines are enforced:

* **Lock ordering** — acquiring B while holding A records the edge
  A → B with the acquiring stack. If the reverse edge was ever
  recorded, two code paths take the same pair of locks in opposite
  orders: a deadlock waiting for the right interleaving. The
  violation report carries both stacks. A blocking re-acquire of a
  non-reentrant lock already held by the same thread is reported (and
  raised) immediately — the alternative is hanging the test run.
* **Eraser-style lockset checking** — :func:`instrument_guarded`
  reads a class's ``# guarded-by:`` annotations through the analysis
  framework and wraps ``__setattr__``: once an instance's guarded
  attribute is written by a second thread, every sampled write must
  hold the declared guard, and the empirical candidate lockset (the
  intersection of locks held across writes) must stay non-empty. The
  first-writer thread is exempt, mirroring Eraser's initialisation
  phase.

Violations never kill the offending thread mid-flight (except the
self-deadlock case, which cannot proceed); they accumulate and fail
the test through :func:`assert_clean` — the conftest drains them after
every test when the sanitizer is installed.

The patch hook replaces ``threading.Lock`` / ``threading.RLock`` with
factories that inspect the *calling frame's* module: only callers in
``repro.*`` get sanitized locks. Stdlib machinery (executors, queues,
``threading.Condition``'s internal RLock) keeps real primitives, so
instrumentation cost lands only on the locks under study.
``threading.Condition(self._gate)`` works unmodified: ``Condition``
falls back to the wrapper's ``acquire``/``release``, so the held-lock
stack correctly tracks ``wait()``'s release/re-acquire cycle.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from dataclasses import dataclass

# Real primitives, captured before any patching can occur. Everything
# internal to the sanitizer uses these — a sanitized sanitizer would
# recurse.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: Frames of stack context captured per first-seen edge / violation.
_STACK_LIMIT = 16


@dataclass
class Violation:
    """One detected discipline violation, with both sides' context."""

    kind: str       # "lock-order-inversion" | "self-deadlock" |
                    # "guarded-write" | "empty-lockset"
    message: str
    first_stack: str
    second_stack: str

    def format(self) -> str:
        parts = [f"[{self.kind}] {self.message}"]
        if self.first_stack:
            parts.append("--- first side ---")
            parts.append(self.first_stack.rstrip())
        if self.second_stack:
            parts.append("--- second side ---")
            parts.append(self.second_stack.rstrip())
        return "\n".join(parts)


class _State:
    """Global sanitizer state (order graph, violations, held stacks)."""

    def __init__(self) -> None:
        self.lock = _REAL_LOCK()
        #: (site_a, site_b) -> formatted stack of the first recording.
        self.order: dict = {}
        self.violations: list = []
        self.installed = False
        self.held = threading.local()

    def held_stack(self) -> list:
        stack = getattr(self.held, "stack", None)
        if stack is None:
            stack = []
            self.held.stack = stack
        return stack


_state = _State()


def _capture_stack() -> str:
    return "".join(
        traceback.format_stack(sys._getframe(2), limit=_STACK_LIMIT)
    )


def _record_violation(kind: str, message: str, first_stack: str,
                      second_stack: str) -> None:
    with _state.lock:
        _state.violations.append(
            Violation(
                kind=kind, message=message,
                first_stack=first_stack, second_stack=second_stack,
            )
        )


class SanitizedLock:
    """A ``threading.Lock``/``RLock`` wrapper enforcing order discipline.

    ``site`` is the creation site (``module.qualname:lineno``) — lock
    identity for the order graph is per *creation site*, matching the
    static checkers' per-class-attribute identity: every instance of a
    class shares one node.
    """

    _reentrant = False

    def __init__(self, inner=None, site: str = "<unknown>") -> None:
        self._inner = inner if inner is not None else _REAL_LOCK()
        self._site = site

    # -- discipline ----------------------------------------------------

    def _check_order(self) -> None:
        held = _state.held_stack()
        if not held:
            return
        if any(entry is self for entry in held):
            if self._reentrant:
                return
            stack = _capture_stack()
            _record_violation(
                "self-deadlock",
                f"blocking re-acquire of non-reentrant lock "
                f"{self._site} already held by this thread",
                "", stack,
            )
            raise RuntimeError(
                f"sanitizer: self-deadlock on {self._site} — the "
                f"acquire below would hang forever:\n{stack}"
            )
        stack = None
        for entry in held:
            if entry._site == self._site:
                continue  # same identity: ordering is moot
            edge = (entry._site, self._site)
            reverse = (self._site, entry._site)
            with _state.lock:
                first = _state.order.get(reverse)
                if first is not None and edge not in _state.order:
                    if stack is None:
                        stack = _capture_stack()
                    _state.violations.append(
                        Violation(
                            kind="lock-order-inversion",
                            message=(
                                f"acquired {self._site} while holding "
                                f"{entry._site}, but another path "
                                f"acquires {entry._site} while holding "
                                f"{self._site} — opposite orders "
                                f"deadlock under the right interleaving"
                            ),
                            first_stack=first,
                            second_stack=stack,
                        )
                    )
                if edge not in _state.order:
                    if stack is None:
                        stack = _capture_stack()
                    _state.order[edge] = stack

    # -- lock protocol -------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1):
        if blocking:
            self._check_order()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _state.held_stack().append(self)
        return acquired

    def release(self) -> None:
        held = _state.held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is self:
                del held[index]
                break
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SanitizedLock {self._site} of {self._inner!r}>"


class SanitizedRLock(SanitizedLock):
    """Reentrant variant: same-thread re-acquire is legal by design."""

    _reentrant = True

    def __init__(self, inner=None, site: str = "<unknown>") -> None:
        super().__init__(
            inner if inner is not None else _REAL_RLOCK(), site
        )


def _creation_site(frame) -> str:
    code = frame.f_code
    qualname = getattr(code, "co_qualname", code.co_name)
    module = frame.f_globals.get("__name__", "<unknown>")
    return f"{module}.{qualname}:{frame.f_lineno}"


def _caller_is_repro(frame) -> bool:
    module = frame.f_globals.get("__name__", "")
    return module == "repro" or module.startswith("repro.")


def _lock_factory():
    frame = sys._getframe(1)
    if _caller_is_repro(frame):
        return SanitizedLock(_REAL_LOCK(), _creation_site(frame))
    return _REAL_LOCK()


def _rlock_factory():
    frame = sys._getframe(1)
    if _caller_is_repro(frame):
        return SanitizedRLock(_REAL_RLOCK(), _creation_site(frame))
    return _REAL_RLOCK()


# -- public surface ----------------------------------------------------


def install() -> None:
    """Patch ``threading.Lock``/``RLock`` to sanitize repro locks.

    Idempotent. Only locks created *after* installation are wrapped —
    install before constructing the objects under test.
    """
    with _state.lock:
        if _state.installed:
            return
        _state.installed = True
    threading.Lock = _lock_factory
    threading.RLock = _rlock_factory


def uninstall() -> None:
    """Restore the real lock factories (existing wrappers keep working)."""
    with _state.lock:
        if not _state.installed:
            return
        _state.installed = False
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK


def installed() -> bool:
    return _state.installed


def install_from_env(env: str = "REPRO_SANITIZE") -> bool:
    """Install when the environment opts in (``REPRO_SANITIZE=1``)."""
    if os.environ.get(env) == "1":
        install()
        return True
    return False


def violations() -> list:
    with _state.lock:
        return list(_state.violations)


def reset() -> None:
    """Clear violations and the recorded order graph (not held stacks)."""
    with _state.lock:
        _state.violations.clear()
        _state.order.clear()


def assert_clean() -> None:
    """Raise ``AssertionError`` with every pending violation, then clear.

    Clearing on failure keeps one bad test from poisoning the rest of
    the session with repeated reports of the same violation.
    """
    with _state.lock:
        pending = list(_state.violations)
        _state.violations.clear()
    if pending:
        report = "\n\n".join(v.format() for v in pending)
        raise AssertionError(
            f"sanitizer detected {len(pending)} concurrency "
            f"violation(s):\n{report}"
        )


# -- Eraser-style lockset checking ------------------------------------

_LOCKSET_STATE = "__sanitizer_lockset__"


def instrument_guarded(cls, sample_every: int = 1):
    """Enforce a class's ``# guarded-by:`` annotations at runtime.

    Parses the class's source through the analysis framework to find
    the declared guards, then wraps ``cls.__setattr__``: every
    ``sample_every``-th write to a guarded attribute by a thread other
    than the instance's first writer must hold the declared guard
    (when that guard is a sanitized lock), and the empirical lockset —
    the intersection of sanitized locks held across those writes —
    must stay non-empty. Returns ``cls`` (usable as a decorator);
    idempotent per class. ``event-loop``-confined attributes are
    skipped: they are checked statically (``REP202``), not by locks.
    """
    import ast
    import inspect

    from repro.analysis.checkers.locking import (
        EVENT_LOOP_GUARD,
        _collect_guards,
    )
    from repro.analysis.core import parse_source

    if getattr(cls, "__sanitizer_instrumented__", False):
        return cls
    path = inspect.getsourcefile(cls)
    with open(path, "r", encoding="utf-8") as handle:
        source = parse_source(path, handle.read())
    guards: dict = {}
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            guards = {
                attr: guard
                for attr, (guard, _line) in
                _collect_guards(source, node).items()
                if guard != EVENT_LOOP_GUARD
            }
            break
    if not guards:
        return cls

    original_setattr = cls.__setattr__
    counter = [0]

    def checking_setattr(self, name, value):
        original_setattr(self, name, value)
        if name not in guards:
            return
        counter[0] += 1
        if (counter[0] - 1) % sample_every:
            return
        _check_guarded_write(self, name, guards[name], cls.__name__)

    cls.__setattr__ = checking_setattr
    cls.__sanitizer_instrumented__ = True
    return cls


def _check_guarded_write(instance, attr: str, guard: str,
                         class_name: str) -> None:
    state = instance.__dict__.get(_LOCKSET_STATE)
    if state is None:
        state = {}
        instance.__dict__[_LOCKSET_STATE] = state
    thread = threading.get_ident()
    entry = state.get(attr)
    if entry is None:
        # Virgin -> exclusive: the first writer (usually __init__)
        # publishes without a lock by design.
        state[attr] = {"first": thread, "candidates": None}
        return
    if entry["first"] == thread and entry["candidates"] is None:
        return  # still exclusive to the first writer
    guard_lock = instance.__dict__.get(guard)
    if not isinstance(guard_lock, SanitizedLock):
        # The instance predates install(): its locks are real
        # primitives the sanitizer cannot observe, so neither the
        # declared-guard check nor lockset refinement can run.
        return
    held = _state.held_stack()
    if not any(
        entry_lock is guard_lock for entry_lock in held
    ):
        _record_violation(
            "guarded-write",
            f"{class_name}.{attr} is '# guarded-by: {guard}' but was "
            f"written without holding it (thread {thread})",
            "", _capture_stack(),
        )
        return
    candidates = {
        id(lock) for lock in held if isinstance(lock, SanitizedLock)
    }
    previous = entry["candidates"]
    refined = candidates if previous is None else previous & candidates
    entry["candidates"] = refined
    if previous is not None and not refined:
        _record_violation(
            "empty-lockset",
            f"{class_name}.{attr}: no single lock is held across all "
            f"observed writes — the guard discipline is not what the "
            f"annotation claims",
            "", _capture_stack(),
        )
        # Restart refinement so one report doesn't repeat forever.
        entry["candidates"] = None
        entry["first"] = thread
