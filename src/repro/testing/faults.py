"""Seedable fault injection for chaos testing.

Named *sites* are threaded through the production code paths that can
fail in a real deployment — the store read path (``store.read``), the
service worker pool (``service.worker``), mutation-log replay
(``log.replay``), and the network server (``net.accept``, ``net.read``,
``net.write``). Each site costs one module-global ``None`` check when
no injector is installed, so the instrumented paths stay effectively
free in production.

An installed :class:`FaultInjector` holds :class:`FaultRule` entries —
``(site, kind, probability, param, max_fires)`` — and decides, with its
own seeded RNG, whether a given site firing produces a fault. Kinds:

``error``
    Raise :class:`~repro.utils.errors.FaultError` at the site (the
    sync helper :func:`check` raises it; async sites raise it
    themselves). Surfaces like a real subsystem failure: a clean typed
    error.
``delay``
    Sleep ``param`` seconds at the site (``check`` sleeps
    synchronously; async sites should ``await asyncio.sleep``).
``drop``
    Only meaningful at network sites: the server tears the connection
    down mid-exchange. :func:`check` ignores it.

Sites match rules by exact name or prefix: the rule site ``net.*``
matches ``net.read`` and ``net.write``. The environment hook::

    REPRO_FAULTS="store.read:error:0.05,net.read:drop:0.02,service.worker:delay:0.1:0.05"
    REPRO_FAULTS_SEED=1234

configures ``site:kind:probability[:param]`` rules, comma-separated;
:func:`install_from_env` is called by the CLI ``serve``/``client``
commands and by the chaos CI step.

The chaos invariant this framework exists to prove: with faults
enabled at every site, every request returns either a result
bit-identical to the fault-free oracle or a clean typed error — never
a wrong answer, never a hang.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field

from repro.utils.errors import FaultError, ReproError

#: Fault kinds a rule may carry.
KINDS = ("error", "delay", "drop")


@dataclass
class FaultRule:
    """One injection rule: where, what, how often, how many times.

    Attributes
    ----------
    site:
        Site name the rule applies to — exact (``store.read``) or a
        ``*``-suffixed prefix (``net.*``).
    kind:
        One of :data:`KINDS`.
    probability:
        Per-firing probability in ``[0, 1]``.
    param:
        Kind parameter: the delay in seconds for ``delay`` rules;
        unused otherwise.
    max_fires:
        Cap on how many times this rule may fire (``None`` = unlimited).
        Lets a chaos case inject "the first read fails" determinism.
    fires:
        How many times the rule has fired so far.
    """

    site: str
    kind: str
    probability: float = 1.0
    param: float = 0.0
    max_fires: int | None = None
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


@dataclass(frozen=True)
class FaultAction:
    """What an armed site should do: ``kind`` plus its parameter."""

    site: str
    kind: str
    param: float = 0.0


class FaultInjector:
    """A seeded registry of fault rules, safe for concurrent sites.

    One RNG (seeded) drives every decision; the per-site fire counts
    are kept for assertions (``injector.fired``). Thread-safe: sites
    fire from worker threads, the asyncio loop, and test threads at
    once.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self.rules: list[FaultRule] = []
        #: ``{site: times a fault actually fired there}``.
        self.fired: dict[str, int] = {}
        #: ``{site: times the site was evaluated}``.
        self.evaluated: dict[str, int] = {}

    def add(
        self,
        site: str,
        kind: str,
        probability: float = 1.0,
        param: float = 0.0,
        max_fires: int | None = None,
    ) -> "FaultInjector":
        """Register one rule; returns ``self`` for chaining."""
        with self._lock:
            self.rules.append(
                FaultRule(site, kind, probability, param, max_fires)
            )
        return self

    def fire(self, site: str) -> FaultAction | None:
        """Decide whether ``site`` faults now; ``None`` = proceed clean.

        The first matching rule that passes its probability draw (and
        has fires remaining) wins.
        """
        with self._lock:
            self.evaluated[site] = self.evaluated.get(site, 0) + 1
            for rule in self.rules:
                if not rule.matches(site):
                    continue
                if rule.max_fires is not None and rule.fires >= rule.max_fires:
                    continue
                if rule.probability < 1.0 and (
                    self._rng.random() >= rule.probability
                ):
                    continue
                rule.fires += 1
                self.fired[site] = self.fired.get(site, 0) + 1
                return FaultAction(site, rule.kind, rule.param)
        return None

    def total_fired(self) -> int:
        """Faults fired across all sites."""
        with self._lock:
            return sum(self.fired.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.seed}, rules={len(self.rules)}, "
            f"fired={self.total_fired()})"
        )


#: The installed injector (``None`` = fault injection disabled; every
#: site then costs one global read + ``is None`` check).
_INJECTOR: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    """Activate ``injector`` process-wide; returns it."""
    global _INJECTOR
    _INJECTOR = injector
    return injector


def uninstall() -> None:
    """Deactivate fault injection (idempotent)."""
    global _INJECTOR
    _INJECTOR = None


def get_injector() -> FaultInjector | None:
    """The installed injector, or ``None``."""
    return _INJECTOR


def fire(site: str) -> FaultAction | None:
    """Evaluate ``site`` against the installed injector (fast path)."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(site)


def check(site: str) -> FaultAction | None:
    """Synchronous site helper: sleep on ``delay``, raise on ``error``.

    Returns the action for kinds the call site must interpret itself
    (``drop``), or ``None`` when the site stays clean. Async sites
    (the net server) call :func:`fire` directly so delays do not block
    the event loop.
    """
    action = fire(site)
    if action is None:
        return None
    if action.kind == "delay":
        time.sleep(action.param)
        return None
    if action.kind == "error":
        raise FaultError(f"injected fault at {site}")
    return action


def parse_env(spec: str, seed: int = 0) -> FaultInjector:
    """Build an injector from a ``REPRO_FAULTS``-style spec string.

    Format: comma-separated ``site:kind:probability[:param]`` rules,
    e.g. ``"store.read:error:0.05,service.worker:delay:0.1:0.05"``.
    """
    injector = FaultInjector(seed=seed)
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise ReproError(
                f"bad REPRO_FAULTS rule {chunk!r}: expected "
                "site:kind:probability[:param]"
            )
        site, kind, probability = parts[0], parts[1], float(parts[2])
        param = float(parts[3]) if len(parts) == 4 else 0.0
        injector.add(site, kind, probability, param)
    return injector


def install_from_env(environ=None) -> FaultInjector | None:
    """Install an injector from ``REPRO_FAULTS`` if the variable is set.

    ``REPRO_FAULTS_SEED`` (default 0) seeds the injector's RNG so chaos
    runs are reproducible. Returns the installed injector or ``None``
    when the variable is absent/empty.
    """
    environ = environ if environ is not None else os.environ
    spec = environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    seed = int(environ.get("REPRO_FAULTS_SEED", "0"))
    return install(parse_env(spec, seed=seed))
