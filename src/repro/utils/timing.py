"""Compatibility shim: the timing helpers moved into ``repro.obs``.

:class:`~repro.obs.timing.Timer` and
:class:`~repro.obs.timing.StageTimings` now live in the observability
subsystem (:mod:`repro.obs.timing`) next to the tracer and metrics
registry they feed. This module re-exports them so existing imports
keep working.
"""

from repro.obs.timing import StageTimings, Timer

__all__ = ["Timer", "StageTimings"]
