"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """Invalid probabilistic model input (PGD/PEG construction errors).

    Raised for malformed probability distributions, reference sets that do
    not include singletons, references used in edges but never declared,
    and similar modeling mistakes.
    """


class StorageError(ReproError):
    """Failure in the disk-backed storage substrate (pager, B+ tree)."""


class IndexError_(ReproError):
    """Failure in path-index construction or lookup.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``.
    """


class QueryError(ReproError):
    """Invalid query input or failure during online query processing."""


class ServiceError(ReproError):
    """Misuse of the query-serving layer (e.g. submitting after close)."""


class DeltaError(ReproError):
    """Invalid live-update operation against a running engine.

    Raised for mutations addressing unknown entities, edges that do not
    exist, reference sets that collide with existing identity
    components, and other violations of the delta subsystem's
    contracts (see :mod:`repro.delta`).
    """
