"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """Invalid probabilistic model input (PGD/PEG construction errors).

    Raised for malformed probability distributions, reference sets that do
    not include singletons, references used in edges but never declared,
    and similar modeling mistakes.
    """


class StorageError(ReproError):
    """Failure in the disk-backed storage substrate (pager, B+ tree)."""


class IndexError_(ReproError):
    """Failure in path-index construction or lookup.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError``.
    """


class QueryError(ReproError):
    """Invalid query input or failure during online query processing."""


class ServiceError(ReproError):
    """Misuse of the query-serving layer (e.g. submitting after close)."""


class ServiceUnavailable(ServiceError):
    """The service cannot admit the request right now.

    Raised when admission stays paused (a live update holding the gate)
    for longer than the service's ``max_admission_wait`` — the caller
    gets a clean, prompt failure instead of an unbounded block and may
    retry once the update settles.
    """


class DeadlineExceeded(ServiceError):
    """A request's deadline passed before its evaluation produced a result.

    Requests carrying a deadline never hang: if the deadline expires
    while the request is still queued, the evaluation is skipped and
    the request's future resolves with this error.
    """


class FaultError(ReproError):
    """An error injected by the fault-injection framework.

    Only ever raised when :mod:`repro.testing.faults` is active, i.e.
    in chaos tests or under ``REPRO_FAULTS``. Deriving from
    :class:`ReproError` means injected faults surface exactly like real
    subsystem failures: as clean typed errors, never as hangs or wrong
    answers.
    """


class NetError(ReproError):
    """Transport-level failure in the network serving tier.

    Connection refusals, resets, dropped connections and short reads on
    the wire protocol. The client retries these (bounded, with backoff)
    because queries are read-only; application errors use
    :class:`RemoteError` and are never retried.
    """


class NetTimeout(NetError):
    """A network request did not complete within its timeout.

    Deliberately *not* retried by the client: the request may have been
    admitted server-side, and the caller should decide whether to spend
    another deadline on it.
    """


class CircuitOpenError(NetError):
    """The client's circuit breaker is open; the request was not sent."""


class RemoteError(NetError):
    """A typed application error returned by the query server.

    ``code`` carries the wire error type (``REJECTED``,
    ``DEADLINE_EXCEEDED``, ``UNAVAILABLE``, ``QUERY_ERROR``,
    ``BAD_REQUEST``, ``INTERNAL``). The server answered — the
    connection is healthy — so the client never retries these.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = str(code)
        self.remote_message = str(message)


class DeltaError(ReproError):
    """Invalid live-update operation against a running engine.

    Raised for mutations addressing unknown entities, edges that do not
    exist, reference sets that collide with existing identity
    components, and other violations of the delta subsystem's
    contracts (see :mod:`repro.delta`).
    """
