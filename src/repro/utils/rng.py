"""Deterministic random-number plumbing.

All stochastic code in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalizes it through :func:`ensure_rng`. Experiments spawn independent
child generators with :func:`spawn_rngs` so that adding a new random
consumer does not perturb the streams of existing ones.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Normalize ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed_or_rng:
        ``None`` for OS entropy, an ``int`` seed for a reproducible stream,
        or an existing generator which is returned unchanged.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Uses numpy's ``SeedSequence.spawn`` mechanism so the children are
    independent of each other and of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(seed_or_rng)
    seq = rng.bit_generator.seed_seq
    if seq is None:  # pragma: no cover - numpy always sets seed_seq today
        seq = np.random.SeedSequence()
    return [np.random.default_rng(child) for child in seq.spawn(count)]
