"""Shared infrastructure: errors, RNG plumbing, timing, validation helpers."""

from repro.utils.errors import (
    ReproError,
    ModelError,
    StorageError,
    IndexError_,
    QueryError,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.obs.timing import Timer, StageTimings
from repro.utils.validation import (
    check_probability,
    check_distribution,
    check_positive,
    check_non_negative,
)

__all__ = [
    "ReproError",
    "ModelError",
    "StorageError",
    "IndexError_",
    "QueryError",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "StageTimings",
    "check_probability",
    "check_distribution",
    "check_positive",
    "check_non_negative",
]
