"""Input-validation helpers shared across the model layers.

These helpers raise :class:`repro.utils.errors.ModelError` with precise
messages; the model classes call them at construction time so malformed
probabilistic inputs fail fast rather than corrupting downstream inference.
"""

from __future__ import annotations

import math

from repro.utils.errors import ModelError

#: Tolerance used when checking that distributions sum to one.
DISTRIBUTION_TOLERANCE = 1e-9


def check_probability(value, name: str = "probability") -> float:
    """Validate that ``value`` is a finite probability in ``[0, 1]``."""
    try:
        p = float(value)
    except (TypeError, ValueError) as exc:
        raise ModelError(f"{name} must be a number, got {value!r}") from exc
    if math.isnan(p) or math.isinf(p):
        raise ModelError(f"{name} must be finite, got {p!r}")
    if p < 0.0 or p > 1.0:
        raise ModelError(f"{name} must be in [0, 1], got {p!r}")
    return p


def check_distribution(mapping, name: str = "distribution") -> dict:
    """Validate a discrete distribution given as ``{outcome: probability}``.

    Probabilities must be in ``[0, 1]`` and sum to at most 1 (within
    tolerance); sub-normalized distributions are rejected unless they sum
    to exactly 1, because the paper's model always works with normalized
    label and existence distributions.
    """
    if not mapping:
        raise ModelError(f"{name} must not be empty")
    cleaned = {}
    total = 0.0
    for outcome, prob in mapping.items():
        p = check_probability(prob, f"{name}[{outcome!r}]")
        cleaned[outcome] = p
        total += p
    if abs(total - 1.0) > DISTRIBUTION_TOLERANCE:
        raise ModelError(
            f"{name} must sum to 1.0 (within {DISTRIBUTION_TOLERANCE}), "
            f"got {total!r}"
        )
    return cleaned


def check_positive(value, name: str = "value") -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    v = float(value)
    if math.isnan(v) or math.isinf(v) or v <= 0:
        raise ModelError(f"{name} must be a positive finite number, got {value!r}")
    return v


def check_non_negative(value, name: str = "value") -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    v = float(value)
    if math.isnan(v) or math.isinf(v) or v < 0:
        raise ModelError(f"{name} must be non-negative and finite, got {value!r}")
    return v
