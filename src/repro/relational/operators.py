"""Physical relational operators: selection, projection, joins, distinct."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.relational.table import Table
from repro.utils.errors import QueryError


def select(table: Table, predicate: Callable[[tuple], bool]) -> Table:
    """Filter rows by a row-level predicate."""
    return Table(table.columns, (row for row in table.rows if predicate(row)))


def project(
    table: Table,
    columns: Sequence[str],
    computed: dict | None = None,
) -> Table:
    """Keep ``columns`` and optionally add computed columns.

    ``computed`` maps new column names to functions of the input row.
    """
    positions = [table.position(c) for c in columns]
    computed = computed or {}
    out_columns = tuple(columns) + tuple(computed)
    rows = []
    for row in table.rows:
        base = tuple(row[p] for p in positions)
        extras = tuple(fn(row) for fn in computed.values())
        rows.append(base + extras)
    return Table(out_columns, rows)


def nested_loop_join(
    left: Table,
    right: Table,
    predicate: Callable[[tuple, tuple], bool],
    row_limit: int | None = None,
    on_rows: Callable[[int], None] | None = None,
) -> Table:
    """Theta join with an arbitrary predicate (quadratic).

    ``row_limit`` bounds the output cardinality; exceeding it raises
    :class:`~repro.relational.engine.RowLimitExceeded` via the callback
    installed by the engine (``on_rows`` is invoked with the running
    output size so the engine can abort runaway plans).
    """
    columns = _joined_columns(left, right)
    rows = []
    for left_row in left.rows:
        for right_row in right.rows:
            if predicate(left_row, right_row):
                rows.append(left_row + right_row)
                if on_rows is not None:
                    on_rows(len(rows))
                if row_limit is not None and len(rows) > row_limit:
                    raise QueryError(
                        f"nested-loop join exceeded row limit {row_limit}"
                    )
    return Table(columns, rows)


def hash_join(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    row_limit: int | None = None,
    on_rows: Callable[[int], None] | None = None,
) -> Table:
    """Equi-join on key column lists (hash build on the smaller input)."""
    if len(left_keys) != len(right_keys):
        raise QueryError("hash_join needs equally many keys on both sides")
    build_on_left = len(left) <= len(right)
    build, probe = (left, right) if build_on_left else (right, left)
    build_keys = left_keys if build_on_left else right_keys
    probe_keys = right_keys if build_on_left else left_keys
    build_positions = [build.position(k) for k in build_keys]
    probe_positions = [probe.position(k) for k in probe_keys]
    buckets: dict = {}
    for row in build.rows:
        key = tuple(row[p] for p in build_positions)
        buckets.setdefault(key, []).append(row)
    columns = _joined_columns(left, right)
    rows = []
    for probe_row in probe.rows:
        key = tuple(probe_row[p] for p in probe_positions)
        for build_row in buckets.get(key, ()):
            joined = (
                build_row + probe_row if build_on_left else probe_row + build_row
            )
            rows.append(joined)
            if on_rows is not None:
                on_rows(len(rows))
            if row_limit is not None and len(rows) > row_limit:
                raise QueryError(
                    f"hash join exceeded row limit {row_limit}"
                )
    return Table(columns, rows)


def distinct(table: Table) -> Table:
    """Remove duplicate rows, preserving first occurrence order."""
    seen: set = set()
    rows = []
    for row in table.rows:
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return Table(table.columns, rows)


def _joined_columns(left: Table, right: Table) -> tuple:
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise QueryError(
            f"join inputs share column names {sorted(overlap)}; "
            "rename via project() first"
        )
    return left.columns + right.columns
