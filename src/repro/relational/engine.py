"""The SQL baseline: subgraph matching as a chain of relational joins.

Mirrors the paper's MySQL implementation (Section 6.2.1, baseline 4):
one self-join of the edge relation per query edge, node-label relations
joined in for the label probabilities, all probability factors
multiplied in the projection, and the threshold applied only at the very
end — no pruning, no index, no search-space reduction. On anything but
tiny graphs the intermediate results explode, which is exactly the
behaviour the paper reports ("SQL never finishes in a month").

``row_limit`` plays the role of the paper's query timeout: plans whose
intermediate results outgrow it abort with :class:`RowLimitExceeded`.
"""

from __future__ import annotations

from repro.peg.entity_graph import Match, ProbabilisticEntityGraph
from repro.query.query_graph import QueryGraph
from repro.relational.operators import hash_join, project
from repro.relational.table import Table
from repro.utils.errors import ReproError


class RowLimitExceeded(ReproError):
    """A relational plan outgrew the configured intermediate-row budget."""


def build_relations(peg: ProbabilisticEntityGraph, query: QueryGraph) -> dict:
    """Materialize the base relations the SQL formulation needs.

    * ``node_<label>``: ``(id, label_prob, exist_prob)`` for every PEG
      node that can carry ``label``,
    * ``edge_<u>_<v>`` per query edge: ``(src, dst, edge_prob)`` in both
      directions, with the probability conditioned on the query labels
      (the CPT lookup a SQL implementation would bake into the table).
    """
    relations: dict = {}
    for label in sorted({query.label(n) for n in query.nodes}):
        rows = []
        for node in peg.node_ids():
            p_label = peg.label_probability_id(node, label)
            if p_label > 0.0:
                rows.append(
                    (node, p_label, peg.existence_probability_id(node))
                )
        relations[("node", label)] = Table(
            ("id", "label_prob", "exist_prob"), rows
        )
    for edge in query.edges:
        node_u, node_v = tuple(edge)
        label_u, label_v = query.label(node_u), query.label(node_v)
        rows = []
        for pair, _ in peg.edges():
            entity_a, entity_b = tuple(pair)
            id_a, id_b = peg.id_of(entity_a), peg.id_of(entity_b)
            prob = peg.edge_probability_id(id_a, id_b, label_u, label_v)
            if prob > 0.0:
                rows.append((id_a, id_b, prob))
            prob_rev = peg.edge_probability_id(id_b, id_a, label_u, label_v)
            if prob_rev > 0.0:
                rows.append((id_b, id_a, prob_rev))
        relations[("edge", node_u, node_v)] = Table(
            ("src", "dst", "edge_prob"), rows
        )
    return relations


def sql_baseline_matches(
    peg: ProbabilisticEntityGraph,
    query: QueryGraph,
    alpha: float,
    row_limit: int = 2_000_000,
) -> list:
    """Evaluate the query the way the paper's SQL baseline does.

    Join order follows the query edges in a connected order (as a SQL
    author would write the FROM clause); every intermediate result keeps
    all bound node columns plus the running probability product. The
    identity constraint (no two nodes sharing a reference) and the exact
    ``Prn`` marginal are applied in the final filter — SQL has no way to
    push them down.

    Raises :class:`RowLimitExceeded` when any intermediate relation
    exceeds ``row_limit`` rows.
    """
    relations = build_relations(peg, query)

    def guard(count: int) -> None:
        if count > row_limit:
            raise RowLimitExceeded(
                f"intermediate result exceeded {row_limit} rows"
            )

    # Join the edge relations in a connected order over query nodes.
    edge_order = _connected_edge_order(query)
    bound: list = []
    current: Table | None = None
    for node_u, node_v in edge_order:
        edge_table = relations[("edge", node_u, node_v)]
        # Endpoints already bound get temporary column names so the
        # equi-join keys do not collide with the accumulated schema.
        name_u = f"tmp_{node_u}" if node_u in bound else f"n_{node_u}"
        name_v = f"tmp_{node_v}" if node_v in bound else f"n_{node_v}"
        renamed = project(
            edge_table,
            (),
            {
                name_u: lambda row: row[0],
                name_v: lambda row: row[1],
                f"p_{node_u}_{node_v}": lambda row: row[2],
            },
        )
        if current is None:
            current = renamed
        else:
            left_keys = [f"n_{n}" for n in (node_u, node_v) if n in bound]
            right_keys = [f"tmp_{n}" for n in (node_u, node_v) if n in bound]
            if left_keys:
                current = hash_join(
                    current, renamed, left_keys, right_keys, on_rows=guard
                )
                keep = [c for c in current.columns if not c.startswith("tmp_")]
                current = project(current, keep)
            else:
                current = _cross(current, renamed, guard)
        for node in (node_u, node_v):
            if node not in bound:
                bound.append(node)
    if current is None:
        # Edgeless query: a single node relation.
        only = query.nodes[0]
        current = project(
            relations[("node", query.label(only))],
            (),
            {f"n_{only}": lambda row: row[0]},
        )
        bound = [only]

    # Join in the node-label relations for label and existence factors.
    for node in bound:
        node_table = relations[("node", query.label(node))]
        renamed = project(
            node_table,
            (),
            {
                f"nid_{node}": lambda row: row[0],
                f"lp_{node}": lambda row: row[1],
                f"xp_{node}": lambda row: row[2],
            },
        )
        current = hash_join(
            current, renamed, [f"n_{node}"], [f"nid_{node}"], on_rows=guard
        )

    # Final WHERE clause: distinct nodes, no shared references, exact
    # probability above the threshold.
    node_positions = {n: current.position(f"n_{n}") for n in bound}
    edge_prob_positions = [
        current.position(f"p_{u}_{v}") for u, v in edge_order
    ]
    label_prob_positions = {n: current.position(f"lp_{n}") for n in bound}

    def row_probability(row: tuple) -> float:
        node_labels = {
            peg.entity_of(row[node_positions[n]]): query.label(n)
            for n in bound
        }
        edges = {
            frozenset(
                (
                    peg.entity_of(row[node_positions[u]]),
                    peg.entity_of(row[node_positions[v]]),
                )
            )
            for u, v in edge_order
        }
        return peg.match_probability(node_labels, edges)

    matches: dict = {}
    for row in current.rows:
        ids = [row[node_positions[n]] for n in bound]
        if len(set(ids)) != len(ids):
            continue
        if any(
            peg.shares_references_id(a, b)
            for i, a in enumerate(ids)
            for b in ids[i + 1:]
        ):
            continue
        # Quick SQL-expressible upper bound before the exact marginal.
        rough = 1.0
        for pos in edge_prob_positions:
            rough *= row[pos]
        for n in bound:
            rough *= row[label_prob_positions[n]]
        if rough < alpha:
            continue
        probability = row_probability(row)
        if probability < alpha:
            continue
        mapping = {n: peg.entity_of(row[node_positions[n]]) for n in bound}
        node_labels = {
            entity: query.label(n) for n, entity in mapping.items()
        }
        nodes_key = tuple(
            sorted(node_labels.items(), key=lambda kv: repr(kv[0]))
        )
        edges = frozenset(
            frozenset((mapping[u], mapping[v])) for u, v in edge_order
        )
        key = (nodes_key, edges)
        if key not in matches:
            matches[key] = Match(
                nodes=nodes_key,
                edges=edges,
                mapping=tuple(
                    sorted(mapping.items(), key=lambda kv: repr(kv[0]))
                ),
                probability=probability,
            )
    return sorted(
        matches.values(), key=lambda m: (-m.probability, repr(m.nodes))
    )


def _cross(left: Table, right: Table, guard) -> Table:
    """Cartesian product (disconnected query components)."""
    columns = left.columns + right.columns
    rows = []
    for left_row in left.rows:
        for right_row in right.rows:
            rows.append(left_row + right_row)
            guard(len(rows))
    return Table(columns, rows)


def _connected_edge_order(query: QueryGraph) -> list:
    """Query edges ordered so each (when possible) touches a bound node."""
    remaining = {tuple(edge) for edge in query.edges}
    ordered: list = []
    bound: set = set()
    while remaining:
        pick = None
        for edge in sorted(remaining, key=repr):
            if not bound or bound & set(edge):
                pick = edge
                break
        if pick is None:
            pick = sorted(remaining, key=repr)[0]
        ordered.append(pick)
        bound |= set(pick)
        remaining.discard(pick)
    return ordered
