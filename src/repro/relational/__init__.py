"""Minimal relational engine — the substrate for the SQL baseline.

The paper compares against a MySQL implementation of subgraph matching
(a chain of self-joins over an edge relation with a final threshold
filter) and reports that it "never finishes in a month". We reproduce
that baseline on a small but honest relational engine: tables,
selections, projections, nested-loop and hash joins, and a query
compiler (:func:`~repro.relational.engine.sql_baseline_matches`) that
evaluates subgraph queries the way the SQL formulation does — all joins
first, probability threshold last.
"""

from repro.relational.table import Table
from repro.relational.operators import (
    select,
    project,
    hash_join,
    nested_loop_join,
    distinct,
)
from repro.relational.engine import (
    sql_baseline_matches,
    build_relations,
    RowLimitExceeded,
)

__all__ = [
    "Table",
    "select",
    "project",
    "hash_join",
    "nested_loop_join",
    "distinct",
    "sql_baseline_matches",
    "build_relations",
    "RowLimitExceeded",
]
