"""Relational tables: named columns over tuple rows."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.utils.errors import QueryError


class Table:
    """An in-memory relation with a fixed column schema.

    Rows are stored as tuples aligned with ``columns``. The class is
    deliberately simple — the SQL baseline needs faithful relational
    semantics, not sophistication.
    """

    def __init__(self, columns: Sequence[str], rows: Iterable[tuple] = ()) -> None:
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise QueryError(f"duplicate column names: {self.columns}")
        self._position = {name: i for i, name in enumerate(self.columns)}
        self.rows = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise QueryError(
                    f"row arity {len(row)} does not match schema "
                    f"{self.columns}"
                )

    def position(self, column: str) -> int:
        """Index of a column in each row tuple."""
        try:
            return self._position[column]
        except KeyError:
            raise QueryError(
                f"unknown column {column!r}; schema is {self.columns}"
            ) from None

    def column_values(self, column: str) -> list:
        """All values of one column, in row order."""
        pos = self.position(column)
        return [row[pos] for row in self.rows]

    def append(self, row: tuple) -> None:
        """Add one row (arity-checked)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise QueryError(
                f"row arity {len(row)} does not match schema {self.columns}"
            )
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(columns={self.columns}, rows={len(self.rows)})"
