"""Process-wide metrics: counters, gauges, log-bucketed histograms.

:class:`MetricsRegistry` hands out named instruments, optionally
distinguished by labels (``registry.counter("fetches", shard="03")``).
Requesting the same name/labels pair returns the same instrument, so
hot paths can cache a handle once and skip the lookup thereafter.

Latency distributions use logarithmically bucketed histograms: bucket
boundaries grow geometrically, which bounds the *relative* error of any
reported quantile by the growth factor (under 19% with the default
``2**0.25``) while using a few dozen integers of memory — accurate
p50/p95/p99 without reservoir sampling, and mergeable across snapshots.

Two export forms:

- :meth:`MetricsRegistry.snapshot` — a flat ``{key: number}`` dict
  (histograms flattened to ``_count``/``_sum``/``_p50``/``_p95``/
  ``_p99`` entries) that ``QueryService.stats_snapshot()`` merges into
  its existing dict.
- :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# TYPE`` headers, cumulative ``_bucket{le=...}``
  series) for scraping or the ``metrics`` CLI command.

A module-level default registry (:func:`get_registry`) is what the
instrumented layers report into; tests may construct private
registries. Setting ``registry.enabled = False`` turns every recording
call into a cheap early return.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


class Counter:
    """Monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "labels", "_value", "_lock", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: tuple) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self._value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that can go up and down (thread-safe)."""

    __slots__ = ("name", "labels", "_value", "_lock", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: tuple) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self):
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Log-bucketed distribution with bounded-relative-error quantiles.

    Bucket boundaries are ``low * growth**i`` up to ``high``; an
    underflow bucket catches values below ``low`` and an overflow
    bucket values above ``high``. Quantiles interpolate linearly within
    the containing bucket, so any reported quantile is within one
    bucket width (a factor of ``growth``) of the true value.
    """

    __slots__ = ("name", "labels", "_bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: tuple,
                 low: float = 1e-5, high: float = 100.0,
                 growth: float = 2 ** 0.25) -> None:
        if not (low > 0 and high > low and growth > 1.0):
            raise ValueError(
                f"invalid histogram bounds: low={low} high={high} growth={growth}")
        self._registry = registry
        self.name = name
        self.labels = labels
        bounds = []
        edge = float(low)
        while edge <= high * (1 + 1e-12):
            bounds.append(edge)
            edge *= growth
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._min = math.inf  # guarded-by: _lock
        self._max = -math.inf  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        index = bisect_right(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of everything observed (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self._count))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lo = self._bounds[index - 1] if index > 0 else 0.0
                    hi = (self._bounds[index] if index < len(self._bounds)
                          else self._max)
                    lo = max(lo, self._min)
                    hi = max(min(hi, self._max), lo)
                    fraction = (rank - cumulative) / bucket_count
                    return lo + (hi - lo) * fraction
                cumulative += bucket_count
            return self._max  # pragma: no cover - unreachable

    def percentiles(self) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ...}`` estimates."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> list:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        with self._lock:
            pairs = []
            cumulative = 0
            for index, bound in enumerate(self._bounds):
                cumulative += self._counts[index]
                pairs.append((bound, cumulative))
            pairs.append((math.inf, cumulative + self._counts[-1]))
        return pairs

    def _reset(self) -> None:
        with self._lock:
            for index in range(len(self._counts)):
                self._counts[index] = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


def _label_suffix(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


def _prometheus_labels(labels: tuple, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Get-or-create home for every instrument in the process.

    Instruments are keyed by ``(name, sorted labels)``; asking twice
    returns the same object, so layers cache handles at import or
    construction time. :meth:`reset` zeroes every instrument *in
    place* — cached handles stay valid across resets (tests and the
    bench harness rely on this).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict = {}  # guarded-by: _lock

    def _get_or_create(self, kind: str, name: str, labels: dict, factory):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                instrument, existing_kind = existing
                if existing_kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing_kind}")
                return instrument
            instrument = factory(key[1])
            self._metrics[key] = (instrument, kind)
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(
            "counter", name, labels,
            lambda key_labels: Counter(self, name, key_labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(
            "gauge", name, labels,
            lambda key_labels: Gauge(self, name, key_labels))

    def histogram(self, name: str, low: float = 1e-5, high: float = 100.0,
                  growth: float = 2 ** 0.25, **labels) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels,
            lambda key_labels: Histogram(self, name, key_labels,
                                         low=low, high=high, growth=growth))

    def _items(self) -> list:
        with self._lock:
            return sorted(self._metrics.items(), key=lambda item: item[0])

    def snapshot(self) -> dict:
        """Flat ``{key: number}`` dict of every instrument.

        Counter/gauge keys are ``name`` or ``name{label=value}``;
        histograms flatten to ``_count``/``_sum``/``_p50``/``_p95``/
        ``_p99`` suffixed keys.
        """
        snap: dict = {}
        for (name, labels), (instrument, kind) in self._items():
            key = name + _label_suffix(labels)
            if kind == "histogram":
                snap[key + "_count"] = instrument.count
                snap[key + "_sum"] = instrument.sum
                for pct, value in instrument.percentiles().items():
                    snap[f"{key}_{pct}"] = value
            else:
                snap[key] = instrument.value
        return snap

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        lines: list = []
        seen_types: set = set()
        for (name, labels), (instrument, kind) in self._items():
            if name not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add(name)
            if kind == "histogram":
                for bound, cumulative in instrument.bucket_counts():
                    le = "+Inf" if math.isinf(bound) else f"{bound:.9g}"
                    label_text = _prometheus_labels(labels, f'le="{le}"')
                    lines.append(f"{name}_bucket{label_text} {cumulative}")
                base = _prometheus_labels(labels)
                lines.append(f"{name}_sum{base} {instrument.sum:.9g}")
                lines.append(f"{name}_count{base} {instrument.count}")
            else:
                label_text = _prometheus_labels(labels)
                value = instrument.value
                if isinstance(value, float):
                    lines.append(f"{name}{label_text} {value:.9g}")
                else:
                    lines.append(f"{name}{label_text} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        for _, (instrument, _) in self._items():
            instrument._reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer reports into."""
    return _REGISTRY
