"""Zero-dependency observability: tracing, metrics, timing.

Three pieces, threaded through every layer of the repro:

- :mod:`repro.obs.trace` — span trees for per-query structure
  (``query --trace``), with a no-op default so disabled tracing costs
  one attribute lookup on the hot path.
- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and log-bucketed latency histograms with Prometheus text
  exposition; ``QueryService.stats_snapshot()`` merges its
  ``snapshot()`` into the service's stats dict.
- :mod:`repro.obs.timing` — the ``Timer`` / ``StageTimings``
  primitives (formerly ``repro.utils.timing``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.timing import StageTimings, Timer
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_span,
    render_trace,
    use_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "StageTimings",
    "Timer",
    "Tracer",
    "current_span",
    "get_registry",
    "render_trace",
    "use_span",
]
