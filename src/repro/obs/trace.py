"""Query tracing: thread-safe span trees with a no-op default path.

A :class:`Span` is one timed node of a trace tree: it records wall-clock
start/end, free-form attributes, monotonically increasing counters and
child spans. Spans are context managers; entering a span pushes it onto
a thread-local stack so deeply nested code (index shards, the delta
overlay) can attach counters to the innermost active span via
:func:`current_span` without threading a handle through every call
signature.

Tracing is opt-in. When no span is active, :func:`current_span` returns
the :data:`NULL_SPAN` singleton whose every method is a no-op — the
disabled path costs one attribute lookup plus a method call, cheap
enough to leave the instrumentation permanently compiled into the hot
loops (the ``bench_obs_overhead`` gate enforces this).

Worker pools break the thread-local chain: a span begun on the
submitting thread is not "current" on the worker that evaluates the
request. :func:`use_span` re-attaches an open span as the worker
thread's current span for the duration of a block, so engine stage
spans nest under the service's request span across the pool boundary.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_span",
    "render_trace",
    "use_span",
]

_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "spans", None)
    if stack is None:
        stack = _LOCAL.spans = []
    return stack


def current_span():
    """The innermost active span on this thread, or :data:`NULL_SPAN`."""
    stack = getattr(_LOCAL, "spans", None)
    if stack:
        return stack[-1]
    return NULL_SPAN


class Span:
    """One timed node of a trace tree.

    Mutation (attributes, counters, child registration) is serialized
    through a per-span lock so concurrent workers may report into a
    shared parent. Use as a context manager, or pair :meth:`begin` /
    :meth:`finish` when the span's lifetime does not nest lexically
    (e.g. a service request that starts on the submitting thread and
    finishes in a done-callback).
    """

    __slots__ = (
        "name", "attributes", "counters", "children",
        "start", "end", "status", "_lock",
    )

    #: Real spans record; the null span advertises ``enabled = False``
    #: so hot paths can skip argument construction with one check.
    enabled = True

    def __init__(self, name: str, **attributes) -> None:
        self.name = str(name)
        self.attributes = dict(attributes)  # guarded-by: _lock
        self.counters: dict = {}  # guarded-by: _lock
        self.children: list = []  # guarded-by: _lock
        self.start = None
        self.end = None
        self.status = "ok"
        self._lock = threading.Lock()

    # -- structure -----------------------------------------------------

    def child(self, name: str, **attributes) -> "Span":
        """Create and register a child span (not yet started)."""
        span = Span(name, **attributes)
        with self._lock:
            self.children.append(span)
        return span

    def set(self, key: str, value) -> None:
        """Set attribute ``key`` to ``value``."""
        with self._lock:
            self.attributes[key] = value

    def incr(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``key`` (created at zero)."""
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + amount

    # -- lifecycle -----------------------------------------------------

    def begin(self) -> "Span":
        """Record the start time without touching the thread-local stack."""
        self.start = time.perf_counter()
        return self

    def finish(self, error: bool = False) -> None:
        """Record the end time; flag the span as failed when ``error``."""
        self.end = time.perf_counter()
        if error:
            self.status = "error"

    def __enter__(self) -> "Span":
        self.begin()
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish(error=exc_type is not None)
        if exc is not None:
            self.set("exception", f"{exc_type.__name__}: {exc}")
        stack = _stack()
        if self in stack:
            # Pop through any spans left open by an exception unwind.
            while stack and stack[-1] is not self:
                stack.pop()
            if stack:
                stack.pop()
        return False

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (0.0 until started; live if still open)."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    # -- export --------------------------------------------------------

    def to_dict(self) -> dict:
        """Recursive plain-dict form (JSON-serializable)."""
        with self._lock:
            children = list(self.children)
            attributes = dict(self.attributes)
            counters = dict(self.counters)
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "status": self.status,
            "attributes": attributes,
            "counters": counters,
            "children": [span.to_dict() for span in children],
        }

    def to_json(self, indent: int | None = None) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, elapsed={self.elapsed:.6f})"


class _NullSpan:
    """No-op stand-in used whenever tracing is disabled.

    Every method does as little as possible; ``child`` returns the
    singleton itself so arbitrarily deep instrumentation collapses to
    constant work. The null span never touches the thread-local stack.
    """

    __slots__ = ()

    enabled = False
    name = ""
    status = "ok"
    attributes: dict = {}
    counters: dict = {}
    children: list = []
    start = None
    end = None
    elapsed = 0.0

    def child(self, name, **attributes) -> "_NullSpan":
        return self

    def set(self, key, value) -> None:
        pass

    def incr(self, key, amount: int = 1) -> None:
        pass

    def begin(self) -> "_NullSpan":
        return self

    def finish(self, error: bool = False) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def to_dict(self) -> dict:
        return {}

    def to_json(self, indent=None) -> str:
        return "{}"

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: Process-wide no-op span; identity-comparable (``span is NULL_SPAN``).
NULL_SPAN = _NullSpan()


class use_span:
    """Make an already-open span the current span for a block.

    The bridge across worker-pool boundaries: the service opens a
    request span on the submitting thread, then the worker wraps the
    evaluation in ``with use_span(request_span):`` so the engine's
    stage spans nest under it. A null span attaches as a no-op.
    """

    __slots__ = ("_span",)

    def __init__(self, span) -> None:
        self._span = span

    def __enter__(self):
        if self._span is not NULL_SPAN:
            _stack().append(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        if self._span is not NULL_SPAN:
            stack = _stack()
            if self._span in stack:
                while stack and stack[-1] is not self._span:
                    stack.pop()
                if stack:
                    stack.pop()
        return False


class Tracer:
    """Records root spans and keeps the most recent finished trees.

    ``span(name)`` returns a child of the current span when one is
    active (so nested tracer calls build one tree), otherwise a new
    root retained for :meth:`export`. The retention window is bounded
    so long-lived services do not accumulate traces without limit.
    """

    enabled = True

    def __init__(self, max_roots: int = 128) -> None:
        self._roots: list = []  # guarded-by: _lock
        self._max_roots = max(1, int(max_roots))
        self._lock = threading.Lock()

    def span(self, name: str, **attributes) -> Span:
        parent = current_span()
        if parent is not NULL_SPAN:
            return parent.child(name, **attributes)
        span = Span(name, **attributes)
        with self._lock:
            self._roots.append(span)
            if len(self._roots) > self._max_roots:
                del self._roots[: len(self._roots) - self._max_roots]
        return span

    def roots(self) -> list:
        """The retained root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def export(self) -> list:
        """Dict form of every retained root span."""
        return [span.to_dict() for span in self.roots()]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.export(), indent=indent, default=str)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


class NullTracer:
    """Disabled tracer: every ``span()`` is the null span."""

    enabled = False

    def span(self, name: str, **attributes):
        return NULL_SPAN

    def roots(self) -> list:
        return []

    def export(self) -> list:
        return []

    def to_json(self, indent=None) -> str:
        return "[]"

    def clear(self) -> None:
        pass


#: Process-wide disabled tracer (the default for the query service).
NULL_TRACER = NullTracer()


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_node(node: dict, lines: list, prefix: str, is_last: bool,
                 is_root: bool) -> None:
    connector = "" if is_root else ("`- " if is_last else "|- ")
    elapsed_ms = float(node.get("elapsed", 0.0)) * 1000.0
    label = f"{prefix}{connector}{node.get('name', '?')}"
    detail = [f"{elapsed_ms:.3f} ms"]
    if node.get("status") == "error":
        detail.append("[error]")
    for key, value in node.get("attributes", {}).items():
        detail.append(f"{key}={_format_value(value)}")
    for key, value in node.get("counters", {}).items():
        detail.append(f"{key}={_format_value(value)}")
    lines.append(f"{label:<36s} {'  '.join(detail)}")
    children = node.get("children", [])
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(children):
        _render_node(child, lines, child_prefix, i == len(children) - 1,
                     is_root=False)


def render_trace(trace) -> str:
    """ASCII tree rendering of a span (accepts a Span or its dict form).

    Each line shows the span name, elapsed milliseconds, then its
    attributes and counters as ``key=value`` pairs — the format the CLI
    prints for ``query --trace``.
    """
    if isinstance(trace, Span):
        trace = trace.to_dict()
    if not trace:
        return "(no trace recorded)"
    lines: list = []
    _render_node(trace, lines, "", is_last=True, is_root=True)
    return "\n".join(lines)
