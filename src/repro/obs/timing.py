"""Wall-clock timing primitives shared by the tracer and the benches.

Home of :class:`Timer` and :class:`StageTimings` (formerly
``repro.utils.timing``; the compatibility shim has been removed). The
engine
keeps reporting its per-stage breakdown through :class:`StageTimings`
— it is the cheap always-on aggregate — while spans from
:mod:`repro.obs.trace` add per-query structure on demand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimings"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StageTimings:
    """Accumulates named stage timings for multi-phase algorithms.

    The offline and online phases both consist of several sequential
    stages; this class records per-stage elapsed seconds so experiments can
    report timing breakdowns (e.g. index lookup vs. reduction vs. join).
    """

    stages: dict = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated time of stage ``name``."""
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def time(self, name: str):
        """Return a context manager that records its elapsed time under ``name``."""
        return _StageContext(self, name)

    @property
    def total(self) -> float:
        """Total seconds across all recorded stages."""
        return sum(self.stages.values())

    def as_dict(self) -> dict:
        """Copy of the per-stage timing mapping."""
        return dict(self.stages)


class _StageContext:
    def __init__(self, timings: StageTimings, name: str) -> None:
        self._timings = timings
        self._name = name
        self._timer = Timer()

    def __enter__(self):
        self._timer.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.__exit__(*exc_info)
        self._timings.record(self._name, self._timer.elapsed)
