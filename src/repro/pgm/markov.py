"""Markov network over the variables of a set of factors.

The Markov network contains one node per random variable and an edge
between two variables iff they co-occur in some factor. Its connected
components identify independent sub-models: the PEG uses this to
factorize the node-existence distribution ``Pr(S.n)`` into per-component
distributions (Eq. 7 of the paper).
"""

from __future__ import annotations

from typing import Iterable

from repro.pgm.factor import Factor


class MarkovNetwork:
    """Variable co-occurrence graph of a collection of factors."""

    def __init__(self, factors: Iterable[Factor]) -> None:
        self.factors = list(factors)
        self._adjacency: dict = {}
        self._variable_factors: dict = {}
        for factor in self.factors:
            for var in factor.variables:
                self._adjacency.setdefault(var, set())
                self._variable_factors.setdefault(var, []).append(factor)
            for var_a in factor.variables:
                for var_b in factor.variables:
                    if var_a != var_b:
                        self._adjacency[var_a].add(var_b)

    @property
    def variables(self) -> set:
        """All random variables appearing in any factor."""
        return set(self._adjacency)

    def neighbors(self, variable) -> set:
        """Variables sharing at least one factor with ``variable``."""
        return set(self._adjacency[variable])

    def factors_of(self, variable) -> list:
        """All factors in which ``variable`` participates."""
        return list(self._variable_factors.get(variable, ()))

    def connected_components(self) -> list:
        """Partition the variables into connected components.

        Returns a list of ``frozenset`` of variables, in deterministic
        order (sorted by the smallest string representation of a member).
        """
        seen: set = set()
        components = []
        for start in self._adjacency:
            if start in seen:
                continue
            stack = [start]
            component = set()
            while stack:
                var = stack.pop()
                if var in component:
                    continue
                component.add(var)
                stack.extend(
                    nbr for nbr in self._adjacency[var] if nbr not in component
                )
            seen |= component
            components.append(frozenset(component))
        components.sort(key=lambda comp: min(str(v) for v in comp))
        return components

    def component_factors(self, component: frozenset) -> list:
        """All factors whose variables lie inside ``component``.

        Factors never straddle components by construction, so this returns
        the complete sub-model for the component.
        """
        result = []
        seen_ids = set()
        for var in component:
            for factor in self._variable_factors.get(var, ()):
                if id(factor) not in seen_ids:
                    seen_ids.add(id(factor))
                    result.append(factor)
        return result
