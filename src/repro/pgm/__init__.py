"""Probabilistic graphical model substrate.

The paper's PEG semantics are defined through a PGM (Section 3); this
package provides the minimal engine those semantics require:

* :class:`~repro.pgm.factor.Factor` — discrete factors over named variables
  with product, marginalization and normalization,
* :class:`~repro.pgm.markov.MarkovNetwork` — variable co-occurrence graph
  and its connected components (used to factorize ``Pr(S.n)``, Eq. 7),
* :func:`~repro.pgm.elimination.variable_elimination` — exact marginal
  inference by variable elimination,
* :mod:`~repro.pgm.configurations` — exact-cover enumeration of valid
  node-existence configurations for identity-uncertainty components.
"""

from repro.pgm.factor import Factor
from repro.pgm.markov import MarkovNetwork
from repro.pgm.elimination import variable_elimination, joint_probability
from repro.pgm.configurations import (
    enumerate_exact_covers,
    ComponentConfiguration,
)

__all__ = [
    "Factor",
    "MarkovNetwork",
    "variable_elimination",
    "joint_probability",
    "enumerate_exact_covers",
    "ComponentConfiguration",
]
