"""Approximate node-existence marginals for large identity components.

The paper (Section 5.1, "Component Probabilities") assumes identity
components stay small enough for exact configuration enumeration, and
adds: *"If not, we could instead either employ an approximate inference
technique to compute the marginals, or compute them on demand using the
PGM engine."* This module implements that fallback: a self-normalized
Monte Carlo estimator over exact covers.

The sampler draws random exact covers with a greedy proposal (pick the
uncovered reference with the fewest options, choose one of its sets
proportionally to its potential) and importance-weights each sample by
``target / proposal``, which makes the estimator consistent for any
marginal ``Pr(E ⊆ chosen)``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Sequence

from repro.utils.errors import ModelError
from repro.utils.rng import ensure_rng


class ComponentSampler:
    """Importance sampler over the exact covers of one component.

    Parameters
    ----------
    references:
        The component's references.
    candidate_sets:
        The reference sets available to cover them.
    set_potentials:
        ``p_s(s.x = T)`` per candidate set.
    num_samples:
        Monte Carlo sample count per marginal estimate.
    seed:
        RNG seed (estimates are deterministic given the seed).
    """

    def __init__(
        self,
        references: Iterable,
        candidate_sets: Sequence[FrozenSet],
        set_potentials: Mapping[FrozenSet, float],
        num_samples: int = 4000,
        seed=None,
    ) -> None:
        if num_samples < 1:
            raise ModelError(f"num_samples must be >= 1, got {num_samples}")
        self.references = frozenset(references)
        self.sets = [frozenset(s) for s in candidate_sets]
        self.potentials = {
            s: float(set_potentials[s]) for s in self.sets
        }
        self.num_samples = int(num_samples)
        self._rng = ensure_rng(seed)
        self._containing: dict = {r: [] for r in self.references}
        for s in self.sets:
            if not s <= self.references:
                raise ModelError(
                    f"set {sorted(s, key=repr)} is not inside the component"
                )
            for r in s:
                self._containing[r].append(s)
        for r, options in self._containing.items():
            if not options:
                raise ModelError(f"reference {r!r} has no covering set")
        self._samples = None

    # ------------------------------------------------------------------

    def _draw_cover(self):
        """One greedy randomized exact cover with its proposal density.

        Returns ``(chosen frozenset of sets, target weight, proposal
        probability)`` or ``None`` when the greedy walk dead-ends (such
        samples simply carry zero weight).
        """
        rng = self._rng
        remaining = set(self.references)
        chosen = []
        proposal = 1.0
        target = 1.0
        while remaining:
            pivot = min(
                remaining, key=lambda r: (len(self._containing[r]), repr(r))
            )
            options = [
                s for s in self._containing[pivot]
                if s <= remaining and self.potentials[s] > 0.0
            ]
            if not options:
                return None
            weights = [self.potentials[s] for s in options]
            total = sum(weights)
            pick = rng.random() * total
            cumulative = 0.0
            selected = options[-1]
            for s, w in zip(options, weights):
                cumulative += w
                if pick <= cumulative:
                    selected = s
                    break
            proposal *= self.potentials[selected] / total
            target *= self.potentials[selected] ** len(selected)
            chosen.append(selected)
            remaining -= selected
        return frozenset(chosen), target, proposal

    def _ensure_samples(self) -> None:
        if self._samples is not None:
            return
        samples = []
        for _ in range(self.num_samples):
            draw = self._draw_cover()
            if draw is None:
                continue
            chosen, target, proposal = draw
            samples.append((chosen, target / proposal))
        if not samples:
            raise ModelError(
                "sampler failed to draw any exact cover; the component may "
                "have no positive-probability configuration"
            )
        self._samples = samples

    # ------------------------------------------------------------------

    def existence_marginal(self, entities: Iterable[FrozenSet]) -> float:
        """Estimated ``Pr(all of `entities` chosen)`` (self-normalized)."""
        required = {frozenset(e) for e in entities}
        unknown = [e for e in required if e not in self.potentials]
        if unknown:
            raise ModelError(
                f"entities {sorted(map(sorted, unknown))} are not candidate "
                "sets of this component"
            )
        self._ensure_samples()
        numerator = 0.0
        denominator = 0.0
        for chosen, weight in self._samples:
            denominator += weight
            if required <= chosen:
                numerator += weight
        if denominator <= 0.0:
            raise ModelError("all sampler weights are zero")
        return numerator / denominator

    def existence_probability(self, entity: FrozenSet) -> float:
        """Estimated single-entity marginal."""
        return self.existence_marginal([entity])
