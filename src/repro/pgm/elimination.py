"""Exact inference by variable elimination.

Used to compute marginals over small factor sets — in particular the
node-existence marginals of identity-uncertainty components when the
caller prefers generic inference over the specialised exact-cover
enumeration in :mod:`repro.pgm.configurations`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.pgm.factor import Factor, product
from repro.utils.errors import ModelError


def _min_degree_order(factors: Sequence[Factor], keep: set) -> list:
    """Greedy min-degree elimination order over variables not in ``keep``."""
    adjacency: dict = {}
    for factor in factors:
        for var in factor.variables:
            adjacency.setdefault(var, set())
        for var_a in factor.variables:
            for var_b in factor.variables:
                if var_a != var_b:
                    adjacency[var_a].add(var_b)
    to_eliminate = set(adjacency) - keep
    # Tie-break keys are stable: compute each str(v) once instead of
    # re-stringifying every remaining variable on every round.
    str_key = {var: str(var) for var in to_eliminate}
    order = []
    while to_eliminate:
        var = min(
            to_eliminate,
            key=lambda v: (len(adjacency[v] & to_eliminate), str_key[v]),
        )
        order.append(var)
        neighbors = adjacency[var]
        for nbr in neighbors:
            adjacency[nbr] |= neighbors - {nbr} - {var}
            adjacency[nbr].discard(var)
        to_eliminate.remove(var)
    return order


def variable_elimination(
    factors: Iterable[Factor],
    query_variables: Sequence,
    evidence: Mapping | None = None,
    normalize: bool = True,
) -> Factor:
    """Compute the (optionally normalized) marginal over ``query_variables``.

    Parameters
    ----------
    factors:
        The factors of the model.
    query_variables:
        Variables to keep; all others are summed out.
    evidence:
        Optional partial assignment to condition on before elimination.
    normalize:
        If true (default), the returned factor is normalized to a
        probability distribution; otherwise raw marginal mass is returned,
        which callers can use to compute partition functions.
    """
    factors = [f for f in factors]
    if not factors:
        raise ModelError("variable_elimination requires at least one factor")
    if evidence:
        factors = [f.reduce(evidence) for f in factors]
    query = list(query_variables)
    all_vars = set()
    for factor in factors:
        all_vars |= set(factor.variables)
    missing = [v for v in query if v not in all_vars]
    if missing:
        raise ModelError(f"query variables not in model: {missing}")

    order = _min_degree_order(factors, keep=set(query))
    work = list(factors)
    for var in order:
        involved = [f for f in work if var in f.variables]
        if not involved:
            continue
        remaining = [f for f in work if var not in f.variables]
        combined = product(involved)
        if set(combined.variables) == {var}:
            # Summing out the only variable would leave no axes; fold the
            # mass into a constant factor instead.
            mass = combined.partition
            reduced = Factor(("__const__",), {"__const__": (0,)}, [mass])
        else:
            reduced = combined.marginalize([var])
        work = remaining + [reduced]

    result = product(work)
    # Drop helper constant axes introduced by full reductions.
    extra = [v for v in result.variables if v not in query]
    for var in extra:
        if len(result.variables) == 1:
            break
        result = result.marginalize([var])
    if normalize:
        result = result.normalize()
    return result


def joint_probability(factors: Iterable[Factor], assignment: Mapping) -> float:
    """Normalized probability of a full ``assignment`` under the factor product.

    Computes ``(1/Z) * prod_f f(assignment_f)`` where ``Z`` is obtained by
    summing the factor product over all assignments (exact, so intended
    for small models and tests).
    """
    factors = list(factors)
    if not factors:
        raise ModelError("joint_probability requires at least one factor")
    joint = product(factors)
    z = joint.partition
    if z <= 0:
        raise ModelError("model has zero total probability mass")
    return joint.get(assignment) / z
