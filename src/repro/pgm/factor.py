"""Discrete factors over named random variables.

A :class:`Factor` maps joint assignments of a tuple of variables to
non-negative real values. Factors are the building block of the PEG's
graphical model: node-existence factors (Eq. 1), node-label factors
(Eq. 2) and edge-existence factors (Eq. 3) are all instances.

The implementation stores values densely in a numpy array with one axis
per variable, which keeps products and marginalizations simple and exact
for the small factors that arise in identity-uncertainty components.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.utils.errors import ModelError


class Factor:
    """A discrete factor ``f(X_1, ..., X_k) -> value >= 0``.

    Parameters
    ----------
    variables:
        Ordered variable names. Must be unique.
    domains:
        Mapping from variable name to an ordered sequence of outcomes.
    values:
        Array-like of shape ``tuple(len(domains[v]) for v in variables)``.
        All entries must be non-negative and finite.
    """

    def __init__(self, variables: Sequence, domains: Mapping, values) -> None:
        variables = tuple(variables)
        if len(set(variables)) != len(variables):
            raise ModelError(f"duplicate variables in factor: {variables}")
        for var in variables:
            if var not in domains:
                raise ModelError(f"missing domain for variable {var!r}")
            if len(domains[var]) == 0:
                raise ModelError(f"empty domain for variable {var!r}")
        self.variables = variables
        self.domains = {var: tuple(domains[var]) for var in variables}
        array = np.asarray(values, dtype=float)
        expected = tuple(len(self.domains[var]) for var in variables)
        if array.shape != expected:
            raise ModelError(
                f"factor values shape {array.shape} does not match domain "
                f"shape {expected} for variables {variables}"
            )
        if not np.all(np.isfinite(array)) or np.any(array < 0):
            raise ModelError("factor values must be finite and non-negative")
        self.values = array
        self._index = {
            var: {outcome: i for i, outcome in enumerate(self.domains[var])}
            for var in variables
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_distribution(cls, variable, distribution: Mapping) -> "Factor":
        """Build a single-variable factor from ``{outcome: probability}``."""
        outcomes = tuple(distribution.keys())
        values = np.array([distribution[o] for o in outcomes], dtype=float)
        return cls((variable,), {variable: outcomes}, values)

    @classmethod
    def from_function(cls, variables, domains, fn) -> "Factor":
        """Build a factor by evaluating ``fn(assignment_dict)`` on every cell."""
        variables = tuple(variables)
        domains = {var: tuple(domains[var]) for var in variables}
        shape = tuple(len(domains[var]) for var in variables)
        values = np.empty(shape, dtype=float)
        for idx in np.ndindex(*shape):
            assignment = {
                var: domains[var][i] for var, i in zip(variables, idx)
            }
            values[idx] = fn(assignment)
        return cls(variables, domains, values)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, assignment: Mapping) -> float:
        """Value of the factor at a full assignment of its variables."""
        idx = tuple(
            self._index[var][assignment[var]] for var in self.variables
        )
        return float(self.values[idx])

    def assignments(self) -> Iterable[dict]:
        """Iterate over all joint assignments of the factor's variables."""
        shape = self.values.shape
        for idx in np.ndindex(*shape):
            yield {
                var: self.domains[var][i]
                for var, i in zip(self.variables, idx)
            }

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def multiply(self, other: "Factor") -> "Factor":
        """Factor product ``self * other`` over the union of variables."""
        merged_vars = list(self.variables)
        for var in other.variables:
            if var not in self.domains:
                merged_vars.append(var)
            elif self.domains[var] != other.domains[var]:
                raise ModelError(
                    f"incompatible domains for variable {var!r}: "
                    f"{self.domains[var]} vs {other.domains[var]}"
                )
        merged_domains = dict(self.domains)
        merged_domains.update(other.domains)
        left = self._broadcast(merged_vars, merged_domains)
        right = other._broadcast(merged_vars, merged_domains)
        return Factor(merged_vars, merged_domains, left * right)

    def _broadcast(self, variables, domains) -> np.ndarray:
        """Expand ``self.values`` to the axis layout given by ``variables``."""
        # Move existing axes into position, then add new axes of size one
        # and broadcast.
        src_positions = [variables.index(var) for var in self.variables]
        shape = [1] * len(variables)
        for var, pos in zip(self.variables, src_positions):
            shape[pos] = len(domains[var])
        array = self.values
        # Reorder self's axes to the relative order they appear in
        # `variables`, then reshape with singleton axes elsewhere.
        order = np.argsort(src_positions)
        array = np.transpose(array, axes=order)
        array = array.reshape(shape)
        full_shape = tuple(len(domains[var]) for var in variables)
        return np.broadcast_to(array, full_shape)

    def marginalize(self, variables) -> "Factor":
        """Sum out ``variables`` and return the reduced factor."""
        to_remove = set(variables)
        unknown = to_remove - set(self.variables)
        if unknown:
            raise ModelError(f"cannot marginalize unknown variables: {unknown}")
        keep = [var for var in self.variables if var not in to_remove]
        if not keep:
            raise ModelError("cannot marginalize all variables of a factor")
        axes = tuple(
            i for i, var in enumerate(self.variables) if var in to_remove
        )
        values = self.values.sum(axis=axes)
        domains = {var: self.domains[var] for var in keep}
        return Factor(keep, domains, values)

    def reduce(self, evidence: Mapping) -> "Factor":
        """Condition on ``evidence`` (a partial assignment), dropping those axes."""
        relevant = {
            var: val for var, val in evidence.items() if var in self._index
        }
        if not relevant:
            return self
        keep = [var for var in self.variables if var not in relevant]
        indexer = []
        for var in self.variables:
            if var in relevant:
                value = relevant[var]
                if value not in self._index[var]:
                    raise ModelError(
                        f"evidence value {value!r} not in domain of {var!r}"
                    )
                indexer.append(self._index[var][value])
            else:
                indexer.append(slice(None))
        values = self.values[tuple(indexer)]
        if not keep:
            # Fully reduced: represent as a constant factor over a dummy
            # variable so downstream algebra still works.
            return Factor(
                ("__const__",), {"__const__": (0,)}, np.array([float(values)])
            )
        domains = {var: self.domains[var] for var in keep}
        return Factor(keep, domains, values)

    def normalize(self) -> "Factor":
        """Scale values so they sum to one (raises if the total mass is zero)."""
        total = float(self.values.sum())
        if total <= 0:
            raise ModelError("cannot normalize a factor with zero total mass")
        return Factor(self.variables, self.domains, self.values / total)

    @property
    def partition(self) -> float:
        """Total mass of the factor (the partition function if unnormalized)."""
        return float(self.values.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Factor(variables={self.variables}, shape={self.values.shape})"


def product(factors: Iterable[Factor]) -> Factor:
    """Multiply a non-empty iterable of factors together."""
    factors = list(factors)
    if not factors:
        raise ModelError("product() requires at least one factor")
    result = factors[0]
    for factor in factors[1:]:
        result = result.multiply(factor)
    return result
