"""Exact-cover enumeration of valid node-existence configurations.

The PEG's node-existence factors (Definition 2, Eq. 1) force every
reference to belong to *exactly one* existing entity. Within one Markov
network component, the legal joint assignments of the ``s.n`` variables
are therefore exactly the partitions of the component's references into
disjoint reference sets drawn from ``S`` — an exact-cover problem.

The weight of a legal configuration is the product, over references
``r``, of ``p_s(s.x = T)`` for the unique chosen set ``s`` containing
``r``; equivalently ``prod_{chosen s} p_s(s)^{|s|}``. Normalizing these
weights over all exact covers of the component yields ``Pr(S_i.n)``
(Eq. 7). Components are small in practice (the paper's experiments cap
them at 4 references), so complete enumeration is both exact and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Sequence, Tuple

from repro.utils.errors import ModelError


@dataclass(frozen=True)
class ComponentConfiguration:
    """One legal node-existence configuration of a component.

    Attributes
    ----------
    chosen:
        The reference sets assigned ``n = T``; they are pairwise disjoint
        and exactly cover the component's references.
    probability:
        Normalized probability of this configuration.
    """

    chosen: FrozenSet[FrozenSet]
    probability: float


def enumerate_exact_covers(
    references: Sequence,
    candidate_sets: Sequence[FrozenSet],
    set_probabilities: Mapping[FrozenSet, float],
) -> Tuple[ComponentConfiguration, ...]:
    """Enumerate all exact covers of ``references`` with their probabilities.

    Parameters
    ----------
    references:
        The references of one Markov-network component.
    candidate_sets:
        Reference sets (frozensets of references) available to cover them;
        each must be a subset of ``references``.
    set_probabilities:
        Existence potential ``p_s(s.x = T)`` for every candidate set.

    Returns
    -------
    Tuple of :class:`ComponentConfiguration`, sorted by descending
    probability then by a deterministic key, with probabilities normalized
    over all covers. Raises :class:`ModelError` if no cover exists or if
    all covers have zero weight.
    """
    ref_list = sorted(references, key=repr)
    ref_set = set(ref_list)
    sets = []
    for s in candidate_sets:
        fs = frozenset(s)
        if not fs:
            raise ModelError("empty reference set in component")
        if not fs <= ref_set:
            raise ModelError(
                f"reference set {sorted(fs, key=repr)} is not contained in "
                f"the component references"
            )
        sets.append(fs)
    if not sets:
        raise ModelError("component has no candidate reference sets")

    # Index: reference -> candidate sets containing it.
    containing: dict = {r: [] for r in ref_list}
    for fs in sets:
        for r in fs:
            containing[r].append(fs)
    for r, options in containing.items():
        if not options:
            raise ModelError(f"reference {r!r} is not covered by any set")

    covers: list = []

    def extend(remaining: set, chosen: tuple, weight: float) -> None:
        if not remaining:
            covers.append((frozenset(chosen), weight))
            return
        # Branch on the uncovered reference with the fewest options —
        # classic exact-cover heuristic, keeps the recursion tight.
        pivot = min(remaining, key=lambda r: (len(containing[r]), repr(r)))
        for candidate in containing[pivot]:
            if not candidate <= remaining:
                continue
            p = float(set_probabilities.get(candidate, 0.0))
            if p <= 0.0:
                continue
            extend(
                remaining - candidate,
                chosen + (candidate,),
                weight * (p ** len(candidate)),
            )

    extend(set(ref_list), (), 1.0)
    if not covers:
        raise ModelError(
            "component admits no exact cover with positive probability"
        )
    total = sum(w for _, w in covers)
    if total <= 0:
        raise ModelError("all component configurations have zero weight")
    configs = [
        ComponentConfiguration(chosen=chosen, probability=w / total)
        for chosen, w in covers
    ]
    configs.sort(
        key=lambda c: (-c.probability, tuple(sorted(map(repr, c.chosen))))
    )
    return tuple(configs)
