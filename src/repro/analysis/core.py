"""Core data model of the invariant linter.

The analysis framework is deliberately small: a :class:`SourceFile`
wraps one parsed module (text, AST, comment map, suppressions), a
:class:`Checker` inspects one file at a time, a :class:`ProjectChecker`
inspects the whole parsed corpus at once (for cross-file contracts such
as cache-key completeness), and a :class:`Diagnostic` is one finding
with a stable code and a location. Everything downstream — the runner,
the CLI, the CI gate — consumes only these types.

Suppressions
------------
A finding is suppressed by a ``lint-ok`` comment on the flagged line::

    value = repr(frozenset(labels))  # lint-ok: REP102 stable within a run

``# lint-ok: CODE[,CODE...]`` suppresses exactly those codes on that
line; a bare ``# lint-ok`` (no codes) suppresses every code on the
line. Anything after the code list is free-form justification — a
suppression without a reason is legal but frowned upon in review.
Suppression comments are extracted with :mod:`tokenize`, so ``lint-ok``
inside string literals is never misread as a suppression.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field


#: ``# lint-ok`` / ``# lint-ok: REP101,REP201 reason...``
_SUPPRESS_RE = re.compile(
    r"lint-ok(?:\s*:\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
)

#: ``# guarded-by: _lock`` / ``# guarded-by: event-loop``
GUARDED_BY_RE = re.compile(r"guarded-by:\s*(?P<guard>[A-Za-z_][\w-]*)")

#: ``# holds-lock: _lock`` — the function's callers hold the lock.
HOLDS_LOCK_RE = re.compile(r"holds-lock:\s*(?P<guard>[A-Za-z_]\w*)")

#: ``# loop-only`` — a sync method only ever invoked on the event loop.
LOOP_ONLY_RE = re.compile(r"\bloop-only\b")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a message, and a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    checker: str = ""

    def format(self) -> str:
        """``path:line:col: CODE message`` — the human report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
        }


@dataclass
class SourceFile:
    """One parsed module plus everything checkers need to inspect it."""

    path: str
    text: str
    tree: ast.Module
    #: Dotted module name starting at the ``repro`` package when the
    #: path contains one (``repro.query.engine``), else the bare stem.
    module: str
    #: line -> comment text (without the leading ``#``), via tokenize.
    comments: dict = field(default_factory=dict)
    #: line -> set of suppressed codes; the sentinel ``"*"`` means all.
    suppressions: dict = field(default_factory=dict)

    @property
    def lines(self) -> list:
        return self.text.splitlines()

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return "*" in codes or code in codes

    def comment_on(self, line: int) -> str:
        """The comment on ``line`` ('' when there is none)."""
        return self.comments.get(line, "")

    def leading_comment_block(self, line: int) -> str:
        """Contiguous comment-only lines immediately above ``line``, joined.

        Lets annotations like ``# guarded-by:`` sit on their own line
        above the attribute they describe (the ``#:`` doc-comment
        style) as well as trailing on the same line.
        """
        parts: list = []
        lineno = line - 1
        source_lines = self.lines
        while lineno >= 1 and lineno <= len(source_lines):
            stripped = source_lines[lineno - 1].strip()
            if not stripped.startswith("#"):
                break
            parts.append(self.comments.get(lineno, stripped.lstrip("#")))
            lineno -= 1
        return "\n".join(reversed(parts))


class AnalysisError(Exception):
    """A file could not be read or parsed (reported, never a crash)."""


def module_name_for(path: str) -> str:
    """Dotted module name anchored at the last ``repro`` path segment.

    Anchoring at ``repro`` makes scoping rules ("applies under
    ``repro.query``") work for both the real tree and test fixtures
    written under any temporary directory, as long as the fixture
    mirrors the package layout (``<tmp>/repro/query/mod.py``).
    """
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    if "repro" in parts[:-1]:
        anchor = len(parts) - 1 - parts[:-1][::-1].index("repro") - 1
        dotted = parts[anchor:-1] + [stem]
        return ".".join(dotted)
    return stem


def _extract_comments(text: str) -> dict:
    """line -> comment text, tolerant of tokenize failures."""
    comments: dict = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _extract_suppressions(comments: dict) -> dict:
    suppressions: dict = {}
    for line, comment in comments.items():
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[line] = {"*"}
        else:
            suppressions[line] = {
                code.strip() for code in codes.split(",") if code.strip()
            }
    return suppressions


def parse_source(path: str, text: str) -> SourceFile:
    """Parse one module into a :class:`SourceFile`.

    Raises :class:`AnalysisError` on a syntax error — the runner turns
    that into a regular diagnostic instead of crashing the whole run.
    """
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(
            f"syntax error at line {exc.lineno}: {exc.msg}"
        ) from exc
    comments = _extract_comments(text)
    return SourceFile(
        path=path,
        text=text,
        tree=tree,
        module=module_name_for(path),
        comments=comments,
        suppressions=_extract_suppressions(comments),
    )


class Checker:
    """Base class of a per-file checker.

    Subclasses set ``name``, declare the ``codes`` they may emit (the
    CLI's ``--list-codes`` and the self-check tests enumerate these)
    and implement :meth:`check`.
    """

    #: Short kebab-case identifier (shows up in reports and --select).
    name: str = ""
    #: ``{code: one-line description}`` of every code this may emit.
    codes: dict = {}

    def check(self, source: SourceFile) -> list:
        raise NotImplementedError

    def diagnostic(self, source: SourceFile, code: str, line: int,
                   message: str, col: int = 0) -> Diagnostic:
        return Diagnostic(
            code=code,
            message=message,
            path=source.path,
            line=line,
            col=col,
            checker=self.name,
        )


class ProjectChecker(Checker):
    """A checker that needs the whole corpus at once (cross-file).

    The runner calls :meth:`check_project` exactly once with every
    parsed file; :meth:`check` is never called.
    """

    def check(self, source: SourceFile) -> list:  # pragma: no cover
        return []

    def check_project(self, sources: list) -> list:
        raise NotImplementedError
