"""Per-file import-alias resolution and the shared blocking-call model.

Two checkers need to answer "what does this call expression actually
invoke?": the per-file asyncio-hygiene checker (``REP401``) and the
interprocedural flow layer (:mod:`repro.analysis.flow`). Before this
module existed, ``REP401`` matched blocking calls purely on the
``module.attr`` spelling — so ``from time import sleep`` or
``import time as t`` slipped straight past it. :class:`ImportMap`
closes that hole once, for every consumer: it records how each local
name was bound by the file's imports, and resolves call expressions
back to ``(module, attribute)`` pairs.

The blocking-call model is split in two deliberately:

* :data:`LOOP_BLOCKING_MODULE_CALLS` / :data:`LOOP_BLOCKING_BUILTINS`
  — anything that stalls an event loop, including *bounded* file I/O
  (``open``, ``os.read``). Used by ``REP401`` (direct) and ``REP410``
  (transitive): on the loop, even a 10ms disk read is a regression.
* :data:`UNBOUNDED_WAIT_METHODS` plus the unbounded subset of the
  module calls — operations with no intrinsic bound (``time.sleep``,
  ``Future.result()``, ``thread.join()``, ``queue.get()``,
  ``event.wait()`` with no timeout). Used by ``REP211`` (blocking
  while holding a lock): bounded I/O under a lock is how storage
  engines work, but an unbounded wait under a lock is a deadlock
  ingredient.

Method-shape matches (``.result()`` with no arguments, ``.join()`` /
``.wait()`` / ``.get()`` with no arguments) are name-based heuristics:
they may hit a non-future / non-queue. That is what per-line
``# lint-ok`` suppressions are for — the suppression doubles as a
reviewer-visible claim that the call cannot block. Calls that are
directly ``await``-ed are exempt from the shape rules (``await
event.wait()`` is the *correct* asyncio spelling, not a block).
"""

from __future__ import annotations

import ast


#: Calls that stall the event loop (module.attr form, post-alias).
LOOP_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep blocks the event loop; await "
                       "asyncio.sleep(...) instead",
    ("os", "read"): "os.read blocks the event loop; move file I/O to a "
                    "thread (asyncio.to_thread)",
    ("os", "write"): "os.write blocks the event loop; move file I/O to a "
                     "thread (asyncio.to_thread)",
    ("socket", "create_connection"): "blocking socket dial inside a "
                                     "coroutine; use asyncio streams",
    ("socket", "socket"): "raw socket construction inside a coroutine; "
                          "use asyncio streams",
    ("subprocess", "run"): "blocking subprocess call in a coroutine; use "
                           "asyncio.create_subprocess_exec",
    ("subprocess", "call"): "blocking subprocess call in a coroutine; use "
                            "asyncio.create_subprocess_exec",
    ("subprocess", "check_output"): "blocking subprocess call in a "
                                    "coroutine; use "
                                    "asyncio.create_subprocess_exec",
    ("subprocess", "Popen"): "blocking subprocess call in a coroutine; "
                             "use asyncio.create_subprocess_exec",
}

#: Builtins that stall the event loop.
LOOP_BLOCKING_BUILTINS = {
    "open": "open() blocks the event loop on disk latency; do file I/O "
            "via asyncio.to_thread",
    "input": "input() blocks the event loop indefinitely",
}

#: Module calls with no intrinsic time bound (the lock-holding set).
UNBOUNDED_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "call"): "subprocess.call",
    ("subprocess", "check_output"): "subprocess.check_output",
    ("socket", "create_connection"): "socket.create_connection",
}

#: ``obj.<name>()`` with NO arguments: an unbounded wait by shape.
#: (``future.result(0)``, ``thread.join(timeout)``, ``queue.get(False)``
#: and ``",".join(parts)`` all carry arguments and never match.)
UNBOUNDED_WAIT_METHODS = {
    "result": ".result() with no timeout waits on a future indefinitely",
    "join": ".join() with no timeout waits on a thread indefinitely",
    "wait": ".wait() with no timeout waits on an event indefinitely",
    "get": ".get() with no timeout waits on a queue indefinitely",
}


class ImportMap:
    """How one module's imports bind local names.

    Built from a parsed module; answers two questions:

    * :meth:`module_of` — is this bare name an alias of a module
      (``import time as t`` binds ``t``)?
    * :meth:`origin_of` — was this bare name imported *from* a module
      (``from time import sleep as snooze`` binds ``snooze`` to
      ``("time", "sleep")``)?

    ``import a.b.c`` binds only the top name ``a`` (to module ``a``),
    matching Python's own binding rule; ``import a.b.c as abc`` binds
    ``abc`` to ``a.b.c``.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> dotted module name
        self.modules: dict = {}
        #: local name -> (module, original attribute name)
        self.names: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.modules[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        self.modules[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: out of scope
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = (node.module, alias.name)

    def module_of(self, name: str) -> str | None:
        """Dotted module name a bare local name aliases, or ``None``."""
        return self.modules.get(name)

    def origin_of(self, name: str) -> tuple | None:
        """``(module, attr)`` a from-import bound to ``name``, or None."""
        return self.names.get(name)

    def resolve_call(self, func: ast.AST) -> tuple | None:
        """``(module, attr)`` a call expression ultimately invokes.

        Handles the three spellings import aliasing produces::

            time.sleep(...)      # Attribute on a module alias
            t.sleep(...)         # import time as t
            sleep(...)           # from time import sleep [as ...]

        Returns ``None`` for anything else (method calls on objects,
        locals, builtins) — those are the callers' problem.
        """
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module = self.module_of(func.value.id)
            if module is not None:
                return (module, func.attr)
            return None
        if isinstance(func, ast.Name):
            return self.origin_of(func.id)
        return None


def _resolve_with_spelling_fallback(func: ast.AST,
                                    imports: ImportMap) -> tuple | None:
    """Resolve via imports, else fall back to the literal spelling.

    ``time.sleep(...)`` reads as a blocking call even in a snippet that
    never imports ``time`` (the pre-alias matcher worked this way and
    the self-check fixtures rely on it); an unresolved ``x.sleep()``
    is still only matched when ``x`` is literally a module name from
    the tables, so method calls on objects stay out.
    """
    resolved = imports.resolve_call(func)
    if resolved is not None:
        return resolved
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if imports.module_of(func.value.id) is None:
            return (func.value.id, func.attr)
    return None


def loop_blocking_call(node: ast.Call, imports: ImportMap,
                       awaited: bool = False) -> str | None:
    """Message when ``node`` would block an event loop, else ``None``.

    ``awaited`` exempts the method-shape heuristics: ``await
    future.result()`` is nonsense the type checker owns, but ``await
    event.wait()`` is the correct asyncio idiom and must not flag.
    """
    func = node.func
    if isinstance(func, ast.Name) and func.id in LOOP_BLOCKING_BUILTINS:
        return LOOP_BLOCKING_BUILTINS[func.id]
    resolved = _resolve_with_spelling_fallback(func, imports)
    if resolved is not None and resolved in LOOP_BLOCKING_MODULE_CALLS:
        return LOOP_BLOCKING_MODULE_CALLS[resolved]
    if (
        not awaited
        and isinstance(func, ast.Attribute)
        and func.attr == "result"
        and not node.args
        and not node.keywords
    ):
        return (
            ".result() on a future blocks the event loop until "
            "the worker finishes; await asyncio.wrap_future(...) "
            "or resolve via call_soon_threadsafe"
        )
    return None


def unbounded_wait_call(node: ast.Call, imports: ImportMap) -> str | None:
    """Description when ``node`` is an unbounded wait, else ``None``.

    The lock-holding blocking set: bounded file I/O is deliberately
    excluded (reading a page under a store lock is normal); unbounded
    waits under a lock are deadlock ingredients and flag ``REP211``.
    """
    func = node.func
    resolved = _resolve_with_spelling_fallback(func, imports)
    if resolved is not None and resolved in UNBOUNDED_MODULE_CALLS:
        # A dial or subprocess call with an explicit timeout is bounded
        # (time.sleep's argument is the wait, so no such escape there).
        bounded = resolved != ("time", "sleep") and any(
            keyword.arg == "timeout" for keyword in node.keywords
        )
        if not bounded:
            return f"{UNBOUNDED_MODULE_CALLS[resolved]}(...)"
    if isinstance(func, ast.Name) and func.id == "input":
        return "input() waits on the user indefinitely"
    if (
        isinstance(func, ast.Attribute)
        and func.attr in UNBOUNDED_WAIT_METHODS
        and not node.args
        and not node.keywords
    ):
        return UNBOUNDED_WAIT_METHODS[func.attr]
    return None
