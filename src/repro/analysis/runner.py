"""The analysis runner: discover, parse, check, report, gate.

``run_paths`` is the library surface (the tests drive it directly);
``main`` is the CLI behind both ``python -m repro.analysis`` and
``python -m repro lint``. Exit status: 0 when clean (or when not in
``--strict`` mode), 1 on any unsuppressed diagnostic under
``--strict``, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.core import (
    AnalysisError,
    Diagnostic,
    ProjectChecker,
    parse_source,
)
from repro.analysis.checkers import all_checkers


def discover_files(paths) -> list:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    found: list = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return found


def run_paths(paths, checkers=None, select=None) -> "Report":
    """Lint every file under ``paths``; returns a :class:`Report`.

    ``select`` optionally restricts to a set of checker names or
    diagnostic codes (the fixture tests isolate one checker at a
    time with it).
    """
    checkers = list(checkers) if checkers is not None else all_checkers()
    if select:
        wanted = set(select)
        checkers = [
            checker for checker in checkers
            if checker.name in wanted or (set(checker.codes) & wanted)
        ]
    sources: list = []
    diagnostics: list = []
    files = discover_files(paths)
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            sources.append(parse_source(path, text))
        except (OSError, UnicodeDecodeError, AnalysisError) as exc:
            diagnostics.append(
                Diagnostic(
                    code="REP001",
                    message=f"file could not be analyzed: {exc}",
                    path=path,
                    line=1,
                    checker="runner",
                )
            )
    by_path = {source.path: source for source in sources}
    suppressed = 0
    for checker in checkers:
        if isinstance(checker, ProjectChecker):
            found = checker.check_project(sources)
        else:
            found = []
            for source in sources:
                found.extend(checker.check(source))
        for diagnostic in found:
            source = by_path.get(diagnostic.path)
            if source is not None and source.is_suppressed(
                diagnostic.code, diagnostic.line
            ):
                suppressed += 1
                continue
            diagnostics.append(diagnostic)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return Report(
        files_checked=len(files),
        diagnostics=diagnostics,
        suppressed=suppressed,
        checkers=[checker.name for checker in checkers],
    )


class Report:
    """Outcome of one analysis run."""

    def __init__(self, files_checked, diagnostics, suppressed, checkers):
        self.files_checked = files_checked
        self.diagnostics = diagnostics
        self.suppressed = suppressed
        self.checkers = checkers

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def codes(self) -> dict:
        """``{code: count}`` over the (unsuppressed) diagnostics."""
        counts: dict = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "checkers": list(self.checkers),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": self.suppressed,
            "counts_by_code": self.codes(),
            "clean": self.clean,
        }

    def render(self) -> str:
        """Human report: one line per finding plus a summary line."""
        lines = [diagnostic.format() for diagnostic in self.diagnostics]
        summary = (
            f"{self.files_checked} files checked, "
            f"{len(self.diagnostics)} finding(s), "
            f"{self.suppressed} suppressed"
        )
        lines.append(summary)
        return "\n".join(lines)


def _dump_call_graph(paths, destination: str) -> int:
    """Parse ``paths`` and dump the resolved call graph as JSON."""
    from repro.analysis.flow.callgraph import CallGraph

    sources: list = []
    for path in discover_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources.append(parse_source(path, handle.read()))
        except (OSError, UnicodeDecodeError, AnalysisError):
            continue  # unparseable files simply have no nodes
    payload = json.dumps(
        CallGraph(sources).to_dict(), indent=2, sort_keys=True
    )
    if destination == "-":
        print(payload)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return 0


def _list_codes() -> str:
    lines: list = []
    for checker in all_checkers():
        lines.append(f"{checker.name}:")
        for code in sorted(checker.codes):
            lines.append(f"  {code}  {checker.codes[code]}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "AST-based invariant linter for the repro codebase: "
            "determinism, lock discipline, cache-key completeness, "
            "asyncio hygiene, error taxonomy, float equality, dead shims."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any unsuppressed diagnostic is found (the CI gate)",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the machine-readable report to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--select", action="append", metavar="NAME_OR_CODE",
        help="run only the named checkers / codes (repeatable)",
    )
    parser.add_argument(
        "--list-codes", action="store_true",
        help="print every diagnostic code with its description and exit",
    )
    parser.add_argument(
        "--call-graph", metavar="FILE", dest="call_graph",
        help=(
            "dump the resolved call graph the flow checkers use as "
            "JSON to FILE ('-' = stdout) and exit"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human report (useful with --json)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_codes:
        print(_list_codes())
        return 0
    for path in args.paths:
        if not os.path.exists(path):
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    if args.call_graph:
        return _dump_call_graph(args.paths, args.call_graph)
    report = run_paths(args.paths, select=args.select)
    if args.json:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if not args.quiet:
        print(report.render())
    if args.strict and not report.clean:
        return 1
    return 0
