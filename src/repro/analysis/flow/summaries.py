"""Per-function summaries the interprocedural checkers consume.

One linear walk per function produces everything downstream analyses
need, each fact tagged with its lexical context:

* **acquisitions** — every lock taken (``with self._lock:`` /
  ``with MODULE_LOCK:`` / ``self._lock.acquire()``), with the locks
  already held at that point (lock-order edges fall straight out);
* **entry locks** — ``# holds-lock: <attr>`` on the ``def`` line:
  locks the *caller* holds for the whole body;
* **blocking sites** — split exactly like :mod:`repro.analysis.imports`:
  event-loop-blocking calls (for ``REP410``) and unbounded waits (for
  ``REP211``), each with the held-lock context;
* **call sites** — resolved edges with held locks and the exception
  types any enclosing ``try`` would catch;
* **raise sites** — explicit ``raise X(...)`` with the class resolved
  through the file's imports, minus those an enclosing handler of the
  same function already catches.

A ``Condition.wait`` on a condition whose underlying lock is currently
held is *not* an unbounded-wait site: that is the designed
producer/consumer idiom (wait releases the lock), not a hold-and-block.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import HOLDS_LOCK_RE, LOOP_ONLY_RE
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.imports import loop_blocking_call, unbounded_wait_call


@dataclass
class Acquisition:
    lock: str
    lineno: int
    held: tuple  # locks already held, outermost first


@dataclass
class BlockingSite:
    lineno: int
    desc: str
    held: tuple


@dataclass
class SummaryCall:
    callee: str | None
    lineno: int
    text: str
    held: tuple
    caught: tuple  # resolved exception names enclosing handlers catch


@dataclass
class RaiseSite:
    exc: str  # resolved class id ("builtins.ValueError" / "module.Class")
    lineno: int
    caught: tuple = ()  # enclosing-handler types at the raise


@dataclass
class FunctionSummary:
    fid: str
    info: FunctionInfo
    entry_locks: tuple
    loop_only: bool
    acquisitions: list = field(default_factory=list)
    loop_blocking: list = field(default_factory=list)   # BlockingSite
    unbounded_blocking: list = field(default_factory=list)  # BlockingSite
    calls: list = field(default_factory=list)           # SummaryCall
    raises: list = field(default_factory=list)          # RaiseSite


def summarize(graph: CallGraph) -> dict:
    """``{fid: FunctionSummary}`` for every function in the graph."""
    summaries: dict = {}
    for fid in sorted(graph.functions):
        summaries[fid] = _summarize_one(graph, graph.functions[fid])
    return summaries


def _summarize_one(graph: CallGraph,
                   info: FunctionInfo) -> FunctionSummary:
    comment = info.source.comment_on(info.node.lineno)
    entry_locks = []
    for match in HOLDS_LOCK_RE.finditer(comment):
        lock = graph.lock_id_for_attr(info, match.group("guard"))
        if lock is not None:
            entry_locks.append(lock)
    summary = FunctionSummary(
        fid=info.fid,
        info=info,
        entry_locks=tuple(entry_locks),
        loop_only=bool(LOOP_ONLY_RE.search(comment)),
    )
    walker = _SummaryWalker(graph, info, summary)
    for stmt in info.node.body:
        walker.walk(stmt)
    return summary


class _SummaryWalker:
    """Context-carrying statement walk of one function body.

    ``held`` is the lexical ``with``-lock stack (entry locks excluded —
    checkers add those; they are held at *every* site). ``caught`` is
    the tuple of exception names enclosing ``try`` blocks catch at the
    current position; the empty string stands for a bare ``except:`` /
    ``except Exception`` catch-all.
    """

    def __init__(self, graph: CallGraph, info: FunctionInfo,
                 summary: FunctionSummary) -> None:
        self.graph = graph
        self.info = info
        self.summary = summary
        self.imports = graph.imports[info.module]
        self._awaited: set = set()

    def walk(self, node: ast.AST, held: tuple = (),
             caught: tuple = ()) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested bodies run later, maybe elsewhere
        if isinstance(node, ast.With):
            self._walk_with(node, held, caught)
            return
        if isinstance(node, ast.Try):
            self._walk_try(node, held, caught)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node, caught)
            # fall through: the exception expression may contain calls
        if isinstance(node, ast.Await) and isinstance(
            node.value, ast.Call
        ):
            self._awaited.add(id(node.value))
        if isinstance(node, ast.Call):
            self._record_call(node, held, caught)
        for child in ast.iter_child_nodes(node):
            self.walk(child, held, caught)

    def _walk_with(self, node: ast.With, held: tuple,
                   caught: tuple) -> None:
        inner = held
        for item in node.items:
            lock = self.graph.lock_id_for(self.info, item.context_expr)
            if lock is not None:
                self.summary.acquisitions.append(
                    Acquisition(lock=lock, lineno=item.context_expr.lineno,
                                held=inner)
                )
                inner = inner + (lock,)
            else:
                self.walk(item.context_expr, inner, caught)
            if item.optional_vars is not None:
                self.walk(item.optional_vars, inner, caught)
        for stmt in node.body:
            self.walk(stmt, inner, caught)

    def _walk_try(self, node: ast.Try, held: tuple,
                  caught: tuple) -> None:
        handled = caught + self._handler_types(node)
        for stmt in node.body:
            self.walk(stmt, held, handled)
        # Handler / else / finally bodies run outside this try's
        # protection — their exceptions see only the outer handlers.
        for handler in node.handlers:
            for stmt in handler.body:
                self.walk(stmt, held, caught)
        for stmt in node.orelse:
            self.walk(stmt, held, caught)
        for stmt in node.finalbody:
            self.walk(stmt, held, caught)

    def _handler_types(self, node: ast.Try) -> tuple:
        types: list = []
        for handler in node.handlers:
            if handler.type is None:
                types.append("")  # bare except: catches everything
            else:
                exprs = (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
                for expr in exprs:
                    name = self._resolve_exception(expr)
                    types.append(name if name is not None else "")
        return tuple(types)

    def _record_call(self, node: ast.Call, held: tuple,
                     caught: tuple) -> None:
        site = self.info.call_for.get(id(node))
        self.summary.calls.append(
            SummaryCall(
                callee=site.callee if site else None,
                lineno=node.lineno,
                text=site.text if site else "<call>()",
                held=held,
                caught=caught,
            )
        )
        loop_msg = loop_blocking_call(
            node, self.imports, awaited=id(node) in self._awaited
        )
        if loop_msg is not None:
            self.summary.loop_blocking.append(
                BlockingSite(lineno=node.lineno, desc=loop_msg, held=held)
            )
        wait_msg = unbounded_wait_call(node, self.imports)
        if wait_msg is not None and not self._is_condition_wait(node, held):
            self.summary.unbounded_blocking.append(
                BlockingSite(lineno=node.lineno, desc=wait_msg, held=held)
            )
        self._record_explicit_acquire(node, held)

    def _record_explicit_acquire(self, node: ast.Call,
                                 held: tuple) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "acquire"):
            return
        lock = self.graph.lock_id_for(self.info, func.value)
        if lock is not None:
            self.summary.acquisitions.append(
                Acquisition(lock=lock, lineno=node.lineno, held=held)
            )

    def _is_condition_wait(self, node: ast.Call, held: tuple) -> bool:
        """``self._cond.wait()`` while holding the condition's lock.

        That is the designed wait idiom — ``wait`` *releases* the lock
        for the duration — not an unbounded hold-and-block. Entry locks
        count as held here (``# holds-lock:`` helpers wait too).
        """
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "wait"):
            return False
        lock = self.graph.lock_id_for(self.info, func.value)
        if lock is None:
            return False
        return lock in held or lock in self.summary.entry_locks

    def _record_raise(self, node: ast.Raise, caught: tuple) -> None:
        if node.exc is None:
            return  # bare re-raise: the original raise is tracked
        expr = node.exc
        if isinstance(expr, ast.Call):
            expr = expr.func
        exc = self._resolve_exception(expr)
        if exc is None:
            return  # dynamic exception object: out of scope
        # Whether an enclosing handler catches it is the checker's call
        # (it owns the class hierarchy); record the handler context.
        self.summary.raises.append(
            RaiseSite(exc=exc, lineno=node.lineno, caught=caught)
        )

    def _resolve_exception(self, expr: ast.AST) -> str | None:
        """Resolved class id of an exception expression, or None."""
        if isinstance(expr, ast.Name):
            origin = self.imports.origin_of(expr.id)
            if origin is not None:
                return f"{origin[0]}.{origin[1]}"
            local = self.graph._module_names.get(
                self.info.module, {}
            ).get(expr.id)
            if local in self.graph.classes:
                return local.replace(":", ".")
            return f"builtins.{expr.id}"
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            target = self.imports.module_of(expr.value.id)
            if target is not None:
                return f"{target}.{expr.attr}"
        return None
