"""Interprocedural flow analysis over the AST linter framework.

PR 9's checkers see one function at a time; this package links them
together. :mod:`callgraph` resolves calls between ``repro`` functions
(``self.method()``, module-level names, cross-module attributes,
constructor calls, and ``self.attr.method()`` through inferred
attribute types — conservative everywhere else), :mod:`summaries`
distils each function into the facts the checkers consume (lock
regions, blocking sites, raise sites, handler context), and
:mod:`checkers` runs three whole-program analyses on top:

* ``REP210``/``REP211`` — global lock-acquisition-order cycles and
  unbounded waits while holding a lock;
* ``REP410`` — event-loop blocking reachable from a coroutine through
  sync calls, with the offending chain in the diagnostic;
* ``REP510`` — untyped exceptions escaping from the engine layers into
  ``repro.net`` handlers.
"""

from __future__ import annotations

from repro.analysis.flow.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.flow.checkers import (
    ErrorEscapeChecker,
    LockFlowChecker,
    TransitiveBlockingChecker,
)
from repro.analysis.flow.summaries import FunctionSummary, summarize

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "FunctionSummary",
    "summarize",
    "LockFlowChecker",
    "TransitiveBlockingChecker",
    "ErrorEscapeChecker",
]
