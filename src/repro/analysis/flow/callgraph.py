"""Static call graph over the parsed ``repro`` corpus.

The graph is *conservative*: an edge exists only when the callee can be
resolved to a specific function in the analysed corpus. Resolved forms:

* ``self.method()`` / ``cls.method()`` — same class, then base classes
  by declared name (textual MRO walk over corpus classes);
* ``name()`` — a module-level function or class of the same module, or
  a from-import of another corpus module (``from repro.x import f``);
* ``alias.name()`` — ``import repro.x as alias`` (and the
  ``from repro import x`` submodule-binding form);
* ``ClassName()`` — resolves to the class's ``__init__`` when defined;
* ``self.attr.method()`` — when some method of the class assigns
  ``self.attr = ClassName(...)`` with a resolvable class (single
  candidate type; conflicting assignments drop the inference).

Everything else — callbacks, functions passed as values (including
``asyncio.to_thread(fn, ...)`` targets), dynamic ``getattr`` dispatch,
stdlib calls — resolves to ``None``: no edge, no propagation. The
interprocedural checkers therefore under-approximate reachability and
never invent a path that the resolved code cannot take.

Function ids are ``module:qualname`` — ``repro.service.service:
QueryService.submit`` or ``repro.query.links:build_links``. Lock and
class keys reuse the same ``module:Class`` shape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import SourceFile
from repro.analysis.imports import ImportMap


@dataclass
class CallSite:
    """One call expression inside a function, with its resolution."""

    node: ast.Call
    lineno: int
    #: Resolved callee function id, or ``None`` (conservative: no edge).
    callee: str | None
    #: Source rendering of the callee expression (for diagnostics).
    text: str


@dataclass
class FunctionInfo:
    """One function or method of the corpus."""

    fid: str
    module: str
    qualname: str
    class_key: str | None  # "module:Class" for methods
    node: ast.AST
    source: SourceFile
    is_async: bool
    calls: list = field(default_factory=list)
    #: id(ast.Call) -> CallSite, for consumers walking the same tree.
    call_for: dict = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class: methods, declared bases, inferred attribute types."""

    key: str  # "module:Class"
    module: str
    name: str
    node: ast.ClassDef
    methods: dict = field(default_factory=dict)  # name -> fid
    base_keys: list = field(default_factory=list)  # resolved "module:Class"
    #: attr -> "module:Class" inferred from ``self.attr = ClassName(...)``
    attr_types: dict = field(default_factory=dict)
    #: lock-like attrs: attr -> kind ("lock" | "rlock" | "condition" | ...)
    lock_attrs: dict = field(default_factory=dict)
    #: Condition aliasing: attr -> underlying lock attr
    #: (``self._done = threading.Condition(self._gate)``).
    lock_aliases: dict = field(default_factory=dict)


_LOCK_CONSTRUCTORS = {
    ("threading", "Lock"): "lock",
    ("threading", "RLock"): "rlock",
    ("threading", "Condition"): "condition",
    ("threading", "Semaphore"): "semaphore",
    ("threading", "BoundedSemaphore"): "semaphore",
}


class CallGraph:
    """Functions, classes, and resolved call edges of a parsed corpus."""

    def __init__(self, sources: list) -> None:
        self.functions: dict = {}   # fid -> FunctionInfo
        self.classes: dict = {}     # "module:Class" -> ClassInfo
        self.imports: dict = {}     # module -> ImportMap
        self.sources: dict = {}     # module -> SourceFile
        self._module_names: dict = {}  # module -> {name: fid or class key}
        #: module-level lock objects: "module:name" from
        #: ``NAME = threading.Lock()`` at module scope.
        self.module_locks: dict = {}
        for source in sources:
            self._index_module(source)
        self._resolve_bases()
        for source in sources:
            self._infer_attr_types(source)
        for info in list(self.functions.values()):
            self._resolve_calls(info)

    # -- indexing ------------------------------------------------------

    def _index_module(self, source: SourceFile) -> None:
        module = source.module
        self.sources[module] = source
        self.imports[module] = ImportMap(source.tree)
        names: dict = self._module_names.setdefault(module, {})
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fid = f"{module}:{node.name}"
                info = FunctionInfo(
                    fid=fid, module=module, qualname=node.name,
                    class_key=None, node=node, source=source,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                )
                self.functions[fid] = info
                names[node.name] = fid
            elif isinstance(node, ast.ClassDef):
                key = f"{module}:{node.name}"
                cls = ClassInfo(
                    key=key, module=module, name=node.name, node=node
                )
                self.classes[key] = cls
                names[node.name] = key
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        fid = f"{module}:{node.name}.{item.name}"
                        self.functions[fid] = FunctionInfo(
                            fid=fid, module=module,
                            qualname=f"{node.name}.{item.name}",
                            class_key=key, node=item, source=source,
                            is_async=isinstance(
                                item, ast.AsyncFunctionDef
                            ),
                        )
                        cls.methods[item.name] = fid
            elif isinstance(node, ast.Assign):
                kind = self._lock_constructor_kind(node.value, module)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks[f"{module}:{target.id}"] = kind

    def _lock_constructor_kind(self, value: ast.AST,
                               module: str) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        resolved = self.imports[module].resolve_call(value.func)
        if resolved is None and isinstance(value.func, ast.Attribute) and \
                isinstance(value.func.value, ast.Name):
            resolved = (value.func.value.id, value.func.attr)
        if resolved is None and isinstance(value.func, ast.Name):
            resolved = ("threading", value.func.id)  # from threading import Lock
        if resolved is None:
            return None
        return _LOCK_CONSTRUCTORS.get(resolved)

    def _resolve_bases(self) -> None:
        for cls in self.classes.values():
            for base in cls.node.bases:
                key = self._resolve_class_expr(base, cls.module)
                if key is not None:
                    cls.base_keys.append(key)

    def _resolve_class_expr(self, expr: ast.AST,
                            module: str) -> str | None:
        """``module:Class`` a name/attribute expression denotes, if any."""
        imports = self.imports.get(module)
        if isinstance(expr, ast.Name):
            local = self._module_names.get(module, {}).get(expr.id)
            if local is not None and local in self.classes:
                return local
            if imports is not None:
                origin = imports.origin_of(expr.id)
                if origin is not None:
                    return self._lookup_in_module(
                        origin[0], origin[1], want_class=True
                    )
        elif isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if imports is not None:
                target = imports.module_of(expr.value.id)
                if target is not None:
                    return self._lookup_in_module(
                        target, expr.attr, want_class=True
                    )
        return None

    def _lookup_in_module(self, module: str, name: str,
                          want_class: bool = False) -> str | None:
        """Resolve ``module.name`` against the corpus, repro-anchored.

        Import statements say ``repro.query.engine`` while corpus
        modules are keyed the same way (module names anchor at the
        last ``repro`` segment), so direct lookup works; ``from
        repro.query import engine`` binds a *submodule*, which has no
        entry under ``repro.query`` — fall through to the joined name.
        """
        entry = self._module_names.get(module, {}).get(name)
        if entry is not None:
            if want_class:
                return entry if entry in self.classes else None
            return entry
        return None

    # -- attribute-type inference --------------------------------------

    def _infer_attr_types(self, source: SourceFile) -> None:
        module = source.module
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            cls = self.classes[f"{module}:{node.name}"]
            conflicts: set = set()
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    for target in stmt.targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        self._record_attr(
                            cls, attr, stmt.value, module, conflicts
                        )
            for attr in conflicts:
                cls.attr_types.pop(attr, None)

    def _record_attr(self, cls: ClassInfo, attr: str, value: ast.AST,
                     module: str, conflicts: set) -> None:
        if not isinstance(value, ast.Call):
            return
        kind = self._lock_constructor_kind(value, module)
        if kind is not None:
            cls.lock_attrs[attr] = kind
            if kind == "condition" and value.args:
                inner = _self_attr(value.args[0])
                if inner is not None:
                    cls.lock_aliases[attr] = inner
            return
        key = self._resolve_class_expr(value.func, module)
        if key is None:
            return
        previous = cls.attr_types.get(attr)
        if previous is not None and previous != key:
            conflicts.add(attr)  # two candidate types: drop the inference
        else:
            cls.attr_types[attr] = key

    # -- call resolution -----------------------------------------------

    def _resolve_calls(self, info: FunctionInfo) -> None:
        collector = _CallCollector()
        for stmt in info.node.body:
            collector.visit(stmt)
        for call in collector.calls:
            callee = self.resolve_call(info, call)
            site = CallSite(
                node=call,
                lineno=call.lineno,
                callee=callee,
                text=_render_callee(call.func),
            )
            info.calls.append(site)
            info.call_for[id(call)] = site

    def resolve_call(self, info: FunctionInfo,
                     call: ast.Call) -> str | None:
        """Function id ``call`` invokes from inside ``info``, or None."""
        func = call.func
        module = info.module
        imports = self.imports[module]
        if isinstance(func, ast.Name):
            entry = self._module_names.get(module, {}).get(func.id)
            if entry is None:
                origin = imports.origin_of(func.id)
                if origin is not None:
                    entry = self._lookup_in_module(origin[0], origin[1])
            return self._as_function(entry)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in ("self", "cls") and info.class_key:
                    return self.lookup_method(info.class_key, func.attr)
                target = imports.module_of(value.id)
                if target is not None:
                    return self._as_function(
                        self._lookup_in_module(target, func.attr)
                    )
                origin = imports.origin_of(value.id)
                if origin is not None:
                    # ``from repro.query import engine`` binds a module
                    return self._as_function(self._lookup_in_module(
                        f"{origin[0]}.{origin[1]}", func.attr
                    ))
                return None
            attr = _self_attr(value)
            if attr is not None and info.class_key:
                cls = self.classes.get(info.class_key)
                type_key = self._attr_type(cls, attr) if cls else None
                if type_key is not None:
                    return self.lookup_method(type_key, func.attr)
        return None

    def _attr_type(self, cls: ClassInfo, attr: str) -> str | None:
        seen: set = set()
        while cls is not None and cls.key not in seen:
            seen.add(cls.key)
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            cls = self.classes.get(cls.base_keys[0]) \
                if cls.base_keys else None
        return None

    def _as_function(self, entry: str | None) -> str | None:
        if entry is None:
            return None
        if entry in self.functions:
            return entry
        if entry in self.classes:  # ClassName(...) -> __init__
            return self.classes[entry].methods.get("__init__")
        return None

    def lookup_method(self, class_key: str, name: str) -> str | None:
        """Resolve a method through the class and its declared bases."""
        seen: set = set()
        queue = [class_key]
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            cls = self.classes.get(key)
            if cls is None:
                continue
            fid = cls.methods.get(name)
            if fid is not None:
                return fid
            queue.extend(cls.base_keys)
        return None

    # -- lock identity -------------------------------------------------

    def lock_id_for(self, info: FunctionInfo,
                    expr: ast.AST) -> str | None:
        """Stable lock identity a ``with``-expression acquires, if any.

        ``self._x`` resolves through the owning class (following base
        classes, and Condition aliasing to the underlying lock);
        module-level names resolve through :attr:`module_locks`. Lock
        identity is per *class attribute*, not per instance — the
        ordering discipline is a class-level contract.
        """
        attr = _self_attr(expr)
        if attr is not None:
            return self.lock_id_for_attr(info, attr)
        if isinstance(expr, ast.Name):
            lock = f"{info.module}:{expr.id}"
            if lock in self.module_locks:
                return lock
        return None

    def lock_id_for_attr(self, info: FunctionInfo,
                         attr: str) -> str | None:
        """Lock identity of ``self.<attr>`` in ``info``'s class."""
        if not info.class_key:
            return None
        seen: set = set()
        key = info.class_key
        while key is not None and key not in seen:
            seen.add(key)
            cls = self.classes.get(key)
            if cls is None:
                break
            attr = cls.lock_aliases.get(attr, attr)
            if attr in cls.lock_attrs:
                return f"{key}.{attr}"
            key = cls.base_keys[0] if cls.base_keys else None
        return None

    def to_dict(self) -> dict:
        """JSON-friendly dump for ``repro lint --call-graph``."""
        out: dict = {}
        for fid in sorted(self.functions):
            info = self.functions[fid]
            out[fid] = {
                "module": info.module,
                "qualname": info.qualname,
                "async": info.is_async,
                "line": info.node.lineno,
                "calls": [
                    {
                        "line": site.lineno,
                        "text": site.text,
                        "callee": site.callee,
                    }
                    for site in info.calls
                ],
            }
        return out


class _CallCollector(ast.NodeVisitor):
    """Collects Call nodes, skipping nested function/lambda bodies.

    A call inside a nested ``def`` runs when the closure runs, not when
    the enclosing function does — following it would fabricate
    reachability (and the closure may run on another thread entirely).
    """

    def __init__(self) -> None:
        self.calls: list = []

    def visit_FunctionDef(self, node) -> None:
        pass

    def visit_AsyncFunctionDef(self, node) -> None:
        pass

    def visit_Lambda(self, node) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _render_callee(func: ast.AST) -> str:
    try:
        return f"{ast.unparse(func)}()"
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<call>()"
