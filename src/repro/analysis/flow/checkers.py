"""Interprocedural checkers: REP210/211, REP410, REP510.

All three are :class:`~repro.analysis.core.ProjectChecker`\\ s — they
see the whole parsed corpus, build one :class:`CallGraph` plus
per-function summaries, and run a small fixpoint each:

* ``REP210`` — the global lock-acquisition-order graph has a cycle:
  two code paths take the same locks in opposite orders, which
  deadlocks the moment two threads interleave. One diagnostic per
  cycle, listing every edge with the code location that creates it.
* ``REP211`` — an unbounded wait (``time.sleep``, no-timeout
  ``Future.result()`` / ``join()`` / ``queue.get()``) executed while a
  lock is held, directly or through any resolvable call chain. A lock
  held across an unbounded wait stalls every other thread that needs
  the lock for as long as the wait lasts.
* ``REP410`` — ``REP401``'s blocking-call set, but *reachable* from a
  coroutine through sync calls (the blind spot of per-function
  analysis: a helper three frames down calls ``time.sleep``). The
  diagnostic prints the full chain from the coroutine to the blocking
  site.
* ``REP510`` — an exception raised in the engine layers
  (``repro.query`` / ``index`` / ``storage`` / ``delta`` / …) that is
  *not* part of the :class:`~repro.utils.errors.ReproError` taxonomy
  can propagate into a ``repro.net`` handler uncaught. The wire
  protocol can only map typed errors; anything else tears down the
  connection instead of returning a typed failure frame.

Everything is conservative: unresolved calls propagate nothing, so a
finding always corresponds to a concrete chain of resolved calls shown
in the message.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ProjectChecker
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.summaries import summarize

#: Layers whose raises must be wrapped before reaching ``repro.net``.
ENGINE_LAYER_PREFIXES = (
    "repro.query",
    "repro.index",
    "repro.storage",
    "repro.peg",
    "repro.pgd",
    "repro.pgm",
    "repro.relational",
    "repro.delta",
    "repro.net.protocol",
)

#: Exceptions REP510 never reports: flow control and interpreter exits,
#: not error-taxonomy material.
_ESCAPE_EXEMPT = {
    "builtins.StopIteration",
    "builtins.StopAsyncIteration",
    "builtins.GeneratorExit",
    "builtins.KeyboardInterrupt",
    "builtins.SystemExit",
}

#: Builtin exception hierarchy (child -> parent), enough to decide
#: whether an ``except`` clause catches a raise.
BUILTIN_EXC_PARENTS = {
    "builtins.Exception": "builtins.BaseException",
    "builtins.KeyboardInterrupt": "builtins.BaseException",
    "builtins.SystemExit": "builtins.BaseException",
    "builtins.GeneratorExit": "builtins.BaseException",
    "builtins.ArithmeticError": "builtins.Exception",
    "builtins.ZeroDivisionError": "builtins.ArithmeticError",
    "builtins.OverflowError": "builtins.ArithmeticError",
    "builtins.FloatingPointError": "builtins.ArithmeticError",
    "builtins.AssertionError": "builtins.Exception",
    "builtins.AttributeError": "builtins.Exception",
    "builtins.BufferError": "builtins.Exception",
    "builtins.EOFError": "builtins.Exception",
    "builtins.ImportError": "builtins.Exception",
    "builtins.ModuleNotFoundError": "builtins.ImportError",
    "builtins.LookupError": "builtins.Exception",
    "builtins.IndexError": "builtins.LookupError",
    "builtins.KeyError": "builtins.LookupError",
    "builtins.MemoryError": "builtins.Exception",
    "builtins.NameError": "builtins.Exception",
    "builtins.OSError": "builtins.Exception",
    "builtins.IOError": "builtins.OSError",
    "builtins.FileNotFoundError": "builtins.OSError",
    "builtins.PermissionError": "builtins.OSError",
    "builtins.TimeoutError": "builtins.OSError",
    "builtins.ConnectionError": "builtins.OSError",
    "builtins.BrokenPipeError": "builtins.ConnectionError",
    "builtins.ConnectionAbortedError": "builtins.ConnectionError",
    "builtins.ConnectionRefusedError": "builtins.ConnectionError",
    "builtins.ConnectionResetError": "builtins.ConnectionError",
    "builtins.ReferenceError": "builtins.Exception",
    "builtins.RuntimeError": "builtins.Exception",
    "builtins.NotImplementedError": "builtins.RuntimeError",
    "builtins.RecursionError": "builtins.RuntimeError",
    "builtins.StopIteration": "builtins.Exception",
    "builtins.StopAsyncIteration": "builtins.Exception",
    "builtins.SyntaxError": "builtins.Exception",
    "builtins.SystemError": "builtins.Exception",
    "builtins.TypeError": "builtins.Exception",
    "builtins.ValueError": "builtins.Exception",
    "builtins.UnicodeError": "builtins.ValueError",
    "builtins.UnicodeDecodeError": "builtins.UnicodeError",
    "builtins.UnicodeEncodeError": "builtins.UnicodeError",
}


def _short_lock(lock: str) -> str:
    """``repro.service.service:QueryService._gate`` -> readable form."""
    module, _, rest = lock.partition(":")
    tail = module.rsplit(".", 1)[-1]
    return f"{tail}.{rest}" if rest else lock


def _qual(graph: CallGraph, fid: str) -> str:
    info = graph.functions.get(fid)
    if info is None:
        return fid
    tail = info.module.rsplit(".", 1)[-1]
    return f"{tail}.{info.qualname}"


class _FlowChecker(ProjectChecker):
    """Shared scaffolding: build graph + summaries once per run."""

    def _prepare(self, sources):
        graph = CallGraph(sources)
        return graph, summarize(graph)


class LockFlowChecker(_FlowChecker):
    name = "lock-flow"
    codes = {
        "REP210": "lock-order cycle across functions (potential deadlock)",
        "REP211": "unbounded wait while holding a lock",
    }

    def check_project(self, sources) -> list:
        graph, summaries = self._prepare(sources)
        acquired = self._acquired_fixpoint(graph, summaries)
        diagnostics: list = []
        edges = self._lock_order_edges(graph, summaries, acquired)
        diagnostics.extend(self._cycle_diagnostics(graph, edges))
        diagnostics.extend(
            self._blocking_diagnostics(graph, summaries)
        )
        return diagnostics

    # -- REP210 --------------------------------------------------------

    def _acquired_fixpoint(self, graph, summaries) -> dict:
        """``{fid: frozenset(locks f may acquire, transitively)}``.

        Entry (``holds-lock``) locks are excluded — the *caller*
        acquires those; counting them here would double every edge.
        """
        acquired = {
            fid: {acq.lock for acq in summary.acquisitions}
            for fid, summary in summaries.items()
        }
        changed = True
        while changed:
            changed = False
            for fid, summary in summaries.items():
                mine = acquired[fid]
                before = len(mine)
                for call in summary.calls:
                    if call.callee is not None:
                        mine |= acquired.get(call.callee, set())
                if len(mine) != before:
                    changed = True
        return acquired

    def _lock_order_edges(self, graph, summaries, acquired) -> dict:
        """``{(src, dst): (source, lineno, detail)}`` — first witness wins.

        An edge src -> dst means "some path acquires dst while holding
        src". Witness iteration is sorted, so the recorded site is
        deterministic across runs.
        """
        edges: dict = {}

        def record(src, dst, source, lineno, detail):
            key = (src, dst)
            if key not in edges:
                edges[key] = (source, lineno, detail)

        for fid in sorted(summaries):
            summary = summaries[fid]
            source = summary.info.source
            for acq in summary.acquisitions:
                holders = tuple(summary.entry_locks) + tuple(acq.held)
                for held in holders:
                    if held == acq.lock and self._reentrant(graph, held):
                        continue
                    record(
                        held, acq.lock, source, acq.lineno,
                        f"{_qual(graph, fid)} acquires "
                        f"{_short_lock(acq.lock)} while holding "
                        f"{_short_lock(held)}",
                    )
            for call in summary.calls:
                if call.callee is None:
                    continue
                holders = tuple(summary.entry_locks) + tuple(call.held)
                if not holders:
                    continue
                for lock in sorted(acquired.get(call.callee, ())):
                    for held in holders:
                        if held == lock and self._reentrant(graph, held):
                            continue
                        record(
                            held, lock, source, call.lineno,
                            f"{_qual(graph, fid)} calls {call.text} "
                            f"(which may acquire {_short_lock(lock)}) "
                            f"while holding {_short_lock(held)}",
                        )
        return edges

    def _reentrant(self, graph, lock: str) -> bool:
        kind = self._lock_kind(graph, lock)
        return kind in ("rlock", "condition")

    def _lock_kind(self, graph, lock: str) -> str | None:
        if lock in graph.module_locks:
            return graph.module_locks[lock]
        key, _, attr = lock.rpartition(".")
        cls = graph.classes.get(key)
        if cls is not None:
            return cls.lock_attrs.get(attr)
        return None

    def _cycle_diagnostics(self, graph, edges) -> list:
        adjacency: dict = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())
        diagnostics: list = []
        for component in _strongly_connected(adjacency):
            in_cycle = len(component) > 1 or any(
                (node, node) in edges for node in component
            )
            if not in_cycle:
                continue
            cycle_edges = sorted(
                (src, dst) for (src, dst) in edges
                if src in component and dst in component
            )
            witness_parts = []
            for src, dst in cycle_edges:
                source, lineno, detail = edges[(src, dst)]
                witness_parts.append(
                    f"{detail} at {source.path}:{lineno}"
                )
            anchor_source, anchor_line, _ = edges[cycle_edges[0]]
            order = " -> ".join(
                _short_lock(lock) for lock in sorted(component)
            )
            diagnostics.append(
                self.diagnostic(
                    anchor_source, "REP210", anchor_line,
                    f"lock-order cycle over {{{order}}} — potential "
                    f"deadlock; pick one global acquisition order. "
                    f"Edges: " + "; ".join(witness_parts),
                )
            )
        return diagnostics

    # -- REP211 --------------------------------------------------------

    def _blocking_diagnostics(self, graph, summaries) -> list:
        witnesses = self._blocking_witnesses(summaries)
        diagnostics: list = []
        for fid in sorted(summaries):
            summary = summaries[fid]
            source = summary.info.source
            for site in summary.unbounded_blocking:
                held = tuple(summary.entry_locks) + tuple(site.held)
                if not held:
                    continue
                locks = ", ".join(_short_lock(lock) for lock in held)
                diagnostics.append(
                    self.diagnostic(
                        source, "REP211", site.lineno,
                        f"{site.desc} while holding {locks} — every "
                        f"other thread needing the lock stalls for the "
                        f"whole wait; release first or bound the wait",
                    )
                )
            for call in summary.calls:
                if call.callee is None:
                    continue
                held = tuple(summary.entry_locks) + tuple(call.held)
                if not held:
                    continue
                witness = witnesses.get(call.callee)
                if witness is None:
                    continue
                chain, desc, path, lineno = witness
                chain_text = " -> ".join(
                    [_qual(graph, fid)]
                    + [_qual(graph, step) for step in chain]
                )
                locks = ", ".join(_short_lock(lock) for lock in held)
                diagnostics.append(
                    self.diagnostic(
                        source, "REP211", call.lineno,
                        f"call chain {chain_text} reaches an unbounded "
                        f"wait ({desc} at {path}:{lineno}) while "
                        f"holding {locks}",
                    )
                )
        return diagnostics

    def _blocking_witnesses(self, summaries) -> dict:
        """``{fid: (chain, desc, path, lineno)}`` — may f block, and where.

        The chain lists fids from f down to the function containing the
        blocking site; resolution order is sorted, so witnesses are
        stable.
        """
        memo: dict = {}

        def visit(fid, visiting):
            if fid in memo:
                return memo[fid]
            if fid in visiting:
                return None  # recursion: no new information
            visiting.add(fid)
            summary = summaries.get(fid)
            result = None
            if summary is not None:
                if summary.unbounded_blocking:
                    site = min(
                        summary.unbounded_blocking,
                        key=lambda s: s.lineno,
                    )
                    result = (
                        (fid,), site.desc,
                        summary.info.source.path, site.lineno,
                    )
                else:
                    for call in sorted(
                        summary.calls,
                        key=lambda c: (c.lineno, c.text),
                    ):
                        if call.callee is None:
                            continue
                        deeper = visit(call.callee, visiting)
                        if deeper is not None:
                            chain, desc, path, lineno = deeper
                            result = ((fid,) + chain, desc, path, lineno)
                            break
            visiting.discard(fid)
            memo[fid] = result
            return result

        for fid in sorted(summaries):
            visit(fid, set())
        return memo


class TransitiveBlockingChecker(_FlowChecker):
    name = "async-flow"
    codes = {
        "REP410": "event-loop-blocking call reachable from a coroutine",
    }

    def check_project(self, sources) -> list:
        graph, summaries = self._prepare(sources)
        witnesses = self._loop_blocking_witnesses(graph, summaries)
        diagnostics: list = []
        for fid in sorted(summaries):
            summary = summaries[fid]
            if not (summary.info.is_async or summary.loop_only):
                continue
            source = summary.info.source
            reported: set = set()
            for call in summary.calls:
                if call.callee is None:
                    continue
                callee_info = graph.functions.get(call.callee)
                if callee_info is None or callee_info.is_async:
                    continue  # async callees are checked on their own
                witness = witnesses.get(call.callee)
                if witness is None or call.callee in reported:
                    continue
                reported.add(call.callee)
                chain, desc, path, lineno = witness
                chain_text = " -> ".join(
                    [_qual(graph, fid)]
                    + [_qual(graph, step) for step in chain]
                )
                diagnostics.append(
                    self.diagnostic(
                        source, "REP410", call.lineno,
                        f"blocking call reachable from the event loop "
                        f"via {chain_text}: {desc} at {path}:{lineno} "
                        f"— run the chain in a thread "
                        f"(asyncio.to_thread) or make it async",
                    )
                )
        return diagnostics

    def _loop_blocking_witnesses(self, graph, summaries) -> dict:
        """Loop-blocking witness per *sync* function, like REP211's."""
        memo: dict = {}

        def visit(fid, visiting):
            if fid in memo:
                return memo[fid]
            if fid in visiting:
                return None
            visiting.add(fid)
            summary = summaries.get(fid)
            result = None
            if summary is not None and not summary.info.is_async:
                if summary.loop_blocking:
                    site = min(
                        summary.loop_blocking, key=lambda s: s.lineno
                    )
                    result = (
                        (fid,), site.desc,
                        summary.info.source.path, site.lineno,
                    )
                else:
                    for call in sorted(
                        summary.calls,
                        key=lambda c: (c.lineno, c.text),
                    ):
                        if call.callee is None:
                            continue
                        callee_info = graph.functions.get(call.callee)
                        if callee_info is None or callee_info.is_async:
                            continue
                        deeper = visit(call.callee, visiting)
                        if deeper is not None:
                            chain, desc, path, lineno = deeper
                            result = ((fid,) + chain, desc, path, lineno)
                            break
            visiting.discard(fid)
            memo[fid] = result
            return result

        for fid in sorted(summaries):
            visit(fid, set())
        return memo


class ErrorEscapeChecker(_FlowChecker):
    name = "error-flow"
    codes = {
        "REP510": "untyped engine exception can reach a net handler",
    }

    def check_project(self, sources) -> list:
        graph, summaries = self._prepare(sources)
        parents = self._exception_parents(graph)
        escapes = self._escape_fixpoint(summaries, parents)
        diagnostics: list = []
        for fid in sorted(summaries):
            summary = summaries[fid]
            if not summary.info.module.startswith("repro.net"):
                continue
            if summary.info.module.startswith("repro.net.protocol"):
                continue
            if not (summary.info.is_async or summary.loop_only):
                continue
            source = summary.info.source
            for exc in sorted(escapes.get(fid, {})):
                chain = escapes[fid][exc]
                if self._is_repro_error(exc, parents):
                    continue
                if exc in _ESCAPE_EXEMPT:
                    continue
                origin_fid, origin_line = chain[-1]
                origin = summaries.get(origin_fid)
                if origin is None or not origin.info.module.startswith(
                    ENGINE_LAYER_PREFIXES
                ):
                    continue
                chain_text = " -> ".join(
                    _qual(graph, step) for step, _ in chain
                )
                diagnostics.append(
                    self.diagnostic(
                        source, "REP510", chain[0][1],
                        f"{exc} raised in {_qual(graph, origin_fid)} "
                        f"({origin.info.source.path}:{origin_line}) can "
                        f"reach this handler unmapped via {chain_text} "
                        f"— catch it at the boundary and wrap it in a "
                        f"typed ReproError so the wire protocol can "
                        f"encode it",
                    )
                )
        return diagnostics

    def _exception_parents(self, graph) -> dict:
        """child -> parent exception-class ids (builtin + corpus)."""
        parents = dict(BUILTIN_EXC_PARENTS)
        for key in sorted(graph.classes):
            cls = graph.classes[key]
            child = key.replace(":", ".")
            node = cls.node
            if not node.bases:
                continue
            if cls.base_keys:
                parents[child] = cls.base_keys[0].replace(":", ".")
                continue
            base = node.bases[0]
            resolved = None
            imports = graph.imports.get(cls.module)
            if isinstance(base, ast.Name):
                origin = imports.origin_of(base.id) if imports else None
                if origin is not None:
                    resolved = f"{origin[0]}.{origin[1]}"
                else:
                    resolved = f"builtins.{base.id}"
            elif isinstance(base, ast.Attribute) and isinstance(
                base.value, ast.Name
            ):
                target = (
                    imports.module_of(base.value.id) if imports else None
                )
                if target is not None:
                    resolved = f"{target}.{base.attr}"
            if resolved is not None:
                parents[child] = resolved
        return parents

    def _is_repro_error(self, exc: str, parents: dict) -> bool:
        seen: set = set()
        current = exc
        while current is not None and current not in seen:
            if current.rsplit(".", 1)[-1] == "ReproError":
                return True
            seen.add(current)
            current = parents.get(current)
        return False

    def _catches(self, handler: str, exc: str, parents: dict) -> bool:
        if handler == "":
            return True  # bare except / unresolvable handler type
        if handler in ("builtins.BaseException",):
            return True
        seen: set = set()
        current = exc
        while current is not None and current not in seen:
            if current == handler:
                return True
            seen.add(current)
            parent = parents.get(current)
            if parent is None and current not in (
                "builtins.BaseException", "builtins.Exception"
            ):
                # Unknown class: assume a plain Exception subclass so a
                # broad `except Exception` still counts as a boundary.
                parent = "builtins.Exception"
            current = parent
        return False

    def _escape_fixpoint(self, summaries, parents) -> dict:
        """``{fid: {exc: witness chain ((fid, line), ...)}}``.

        The chain runs caller-first: entry call site down to the raise
        site. Propagation only ever *adds* (exc -> chain) pairs, so the
        iteration terminates; recursion just stops adding.
        """
        escapes: dict = {
            fid: {} for fid in summaries
        }
        for fid, summary in summaries.items():
            for site in summary.raises:
                if any(
                    self._catches(handler, site.exc, parents)
                    for handler in site.caught
                ):
                    continue
                escapes[fid].setdefault(
                    site.exc, ((fid, site.lineno),)
                )
        changed = True
        while changed:
            changed = False
            for fid in sorted(summaries):
                summary = summaries[fid]
                for call in summary.calls:
                    if call.callee is None:
                        continue
                    for exc, chain in escapes.get(
                        call.callee, {}
                    ).items():
                        if exc in escapes[fid]:
                            continue
                        if any(
                            self._catches(handler, exc, parents)
                            for handler in call.caught
                        ):
                            continue
                        escapes[fid][exc] = (
                            ((fid, call.lineno),) + chain
                        )
                        changed = True
        return escapes


def _strongly_connected(adjacency: dict) -> list:
    """Tarjan's SCCs, iterative, deterministic (sorted neighbours)."""
    index: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list = []
    counter = [0]

    def strongconnect(root):
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index:
                    index[neighbour] = lowlink[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append(
                        (neighbour,
                         iter(sorted(adjacency.get(neighbour, ()))))
                    )
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(
                        lowlink[node], index[neighbour]
                    )
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return components
