"""``python -m repro.analysis [paths...] [--strict] [--json FILE]``."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
