"""``repro.analysis``: the repo's AST-based invariant linter.

Generic linters cannot check the contracts this reproduction actually
depends on — bit-exact backend agreement, ``PYTHONHASHSEED``-independent
ordering, lock-guarded stats, version-keyed cache invalidation, typed
wire errors. This package mechanizes them: a small per-file /
cross-file checker framework (:mod:`repro.analysis.core`,
:mod:`repro.analysis.runner`) plus one checker per contract
(:mod:`repro.analysis.checkers`). ``python -m repro.analysis src/repro
--strict`` is the CI gate; ``python -m repro lint`` is the same thing
through the main CLI.

See the README's "Static analysis" section for the diagnostic codes,
the ``# guarded-by:`` annotation convention and how to suppress a
finding with ``# lint-ok:``.
"""

from repro.analysis.core import (
    AnalysisError,
    Checker,
    Diagnostic,
    ProjectChecker,
    SourceFile,
    parse_source,
)
from repro.analysis.checkers import all_checkers
from repro.analysis.runner import Report, run_paths

__all__ = [
    "AnalysisError",
    "Checker",
    "Diagnostic",
    "ProjectChecker",
    "Report",
    "SourceFile",
    "all_checkers",
    "parse_source",
    "run_paths",
]
