"""Determinism checkers: hash-order and hidden-entropy hazards.

The reproduction's core contract is bit-exact, ``PYTHONHASHSEED``-
independent output: the vectorized and reference backends must agree,
match lists must sort identically across processes, and cache keys must
be stable. Three recurring ways that contract has been broken by hand
before tooling existed (PR 5 fixed a hash-order ``frozenset`` repr in
the exact-cover tie-break; PR 4 fixed ``top_k_matches`` trusting
set-iteration emission order):

``REP101``
    Iterating a set (literal, comprehension, or ``set()``/
    ``frozenset()`` call) in a position where the iteration order can
    escape — a ``for`` loop, a comprehension, or an order-preserving
    conversion (``list``/``tuple``/``iter``/``enumerate``/``join``).
    Hash randomization makes that order differ between processes.
    Wrap the iterable in ``sorted(...)`` or restructure.

``REP102``
    ``repr()`` / ``str()`` of a set or frozenset expression. The
    rendering follows hash order, so using it as a sort key, cache-key
    component or stored artifact is nondeterministic across processes.

``REP103``
    Module-level ``random.*`` (process-global, unseeded RNG) or wall
    clock (``time.time`` / ``time.time_ns``) inside pure query logic
    (``repro.query``, ``repro.pgm``, ``repro.pgd``, ``repro.peg``,
    ``repro.index``, ``repro.relational``, ``repro.delta``). Pure
    stages must be replayable: take a seeded ``random.Random`` and use
    monotonic clocks for timing.

Only syntactically evident sets are flagged — a variable that happens
to hold a set is beyond a single-file AST pass. That keeps the checker
free of false positives at the cost of missed cases; the differential
harness remains the backstop for those.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, SourceFile

#: Modules whose logic must be a pure function of (graph, query, seed).
PURE_MODULE_PREFIXES = (
    "repro.query",
    "repro.pgm",
    "repro.pgd",
    "repro.peg",
    "repro.index",
    "repro.relational",
    "repro.delta",
)

#: Order-preserving consumers: feeding them a set leaks hash order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "iter", "enumerate"}

#: Global-RNG entry points on the ``random`` module.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "seed",
}

_WALL_CLOCK_FNS = {"time", "time_ns"}


def is_set_expression(node: ast.AST) -> bool:
    """Is ``node`` syntactically guaranteed to evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    return False


class DeterminismChecker(Checker):
    name = "determinism"
    codes = {
        "REP101": "iteration over a set leaks hash order into emitted order",
        "REP102": "repr()/str() of a set is hash-order dependent",
        "REP103": "unseeded global RNG or wall clock in pure query logic",
    }

    def check(self, source: SourceFile) -> list:
        visitor = _Visitor(self, source)
        visitor.visit(source.tree)
        return visitor.diagnostics


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker: DeterminismChecker, source: SourceFile) -> None:
        self.checker = checker
        self.source = source
        self.diagnostics: list = []
        self.pure = source.module.startswith(PURE_MODULE_PREFIXES)

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        self.diagnostics.append(
            self.checker.diagnostic(
                self.source, code, node.lineno, message,
                col=node.col_offset,
            )
        )

    # -- REP101: set iteration feeding order ---------------------------

    def _check_iter(self, iterable: ast.AST, context: str) -> None:
        if is_set_expression(iterable):
            self._flag(
                "REP101", iterable,
                f"{context} iterates a set in hash order; wrap it in "
                "sorted(...) so the order is PYTHONHASHSEED-independent",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter, "async for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # The output is itself a set: the generator's order cannot
        # escape, so only recurse (a nested hazard still flags).
        self.generic_visit(node)

    # -- Calls: REP101 conversions, REP102 repr, REP103 entropy --------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if (
                func.id in _ORDER_SENSITIVE_BUILTINS
                and node.args
                and is_set_expression(node.args[0])
            ):
                self._flag(
                    "REP101", node,
                    f"{func.id}() of a set preserves hash order; use "
                    "sorted(...) for a stable order",
                )
            elif func.id in ("repr", "str", "format") and node.args and (
                is_set_expression(node.args[0])
            ):
                self._flag(
                    "REP102", node,
                    f"{func.id}() of a set renders in hash order and is "
                    "not stable across processes; sort the elements and "
                    "render those",
                )
        elif isinstance(func, ast.Attribute):
            if (
                func.attr == "join"
                and node.args
                and is_set_expression(node.args[0])
            ):
                self._flag(
                    "REP101", node,
                    "join() over a set emits elements in hash order; "
                    "join(sorted(...)) instead",
                )
            elif self.pure and isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "random" and func.attr in _GLOBAL_RANDOM_FNS:
                    self._flag(
                        "REP103", node,
                        f"random.{func.attr}() uses the process-global "
                        "RNG; pure query logic must take a seeded "
                        "random.Random so runs are replayable",
                    )
                elif base == "time" and func.attr in _WALL_CLOCK_FNS:
                    self._flag(
                        "REP103", node,
                        f"time.{func.attr}() reads the wall clock inside "
                        "pure query logic; use time.monotonic()/"
                        "perf_counter() for intervals or pass timestamps in",
                    )
        self.generic_visit(node)
