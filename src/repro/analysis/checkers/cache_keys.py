"""Cache-key completeness: every result-affecting knob must be keyed.

The serving stack has three caches whose keys must stay complete as
options grow — the result cache (``service.request_key``), the plan
cache (``query.plan.plan_key``) and the link-structure cache (keyed
inline in ``build_candidate_links_vectorized``). PR 5 and PR 7 both
had review rounds over ``QueryOptions`` fields missing from
``request_key``; a stale key silently serves wrong results, the worst
failure mode a cache has.

``REP301``
    A ``QueryOptions`` field is neither read by ``request_key`` nor
    listed in ``RESULT_NEUTRAL_OPTIONS`` (the explicit, documented
    exclusion list living next to ``request_key``). Adding a new
    option forces a conscious decision: key it, or declare it
    result-neutral.

``REP302``
    The exclusion list drifted: it names a field ``QueryOptions`` no
    longer has, or a field ``request_key`` *does* read (an exclusion
    that is not excluding anything hides intent).

``REP303``
    A registered key-builder function no longer references one of its
    required ingredients — e.g. ``plan_key`` without ``graph_version``
    would survive live updates with stale plans, ``plan_key`` without
    ``_milli`` would fragment the milli-bucket sharing contract.

The checker is corpus-wide and self-disabling: when the corpus does not
contain both ``QueryOptions`` and ``request_key`` (fixture runs, other
projects) the completeness rules simply do not engage. The whole-repo
test asserts they *do* engage on ``src/repro``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Diagnostic, ProjectChecker

#: Key-builder contracts: (function name, required identifier tokens).
#: A token is satisfied by any Name, Attribute or keyword-argument
#: reference inside the function body.
KEY_BUILDER_CONTRACTS = {
    "request_key": {"canonical_form", "graph_version"},
    "plan_key": {"canonical_form", "_milli", "graph_version", "max_length"},
    "build_candidate_links_vectorized": {
        "pair_signature", "fingerprint", "_milli", "graph_version",
    },
}

#: Name of the exclusion-list constant expected beside request_key.
EXCLUSION_CONSTANT = "RESULT_NEUTRAL_OPTIONS"


def _identifier_tokens(node: ast.AST) -> set:
    """Every Name id, Attribute attr and keyword arg used under ``node``."""
    tokens: set = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            tokens.add(child.id)
        elif isinstance(child, ast.Attribute):
            tokens.add(child.attr)
        elif isinstance(child, ast.keyword) and child.arg:
            tokens.add(child.arg)
    return tokens


def _options_attr_reads(func: ast.AST, param: str) -> set:
    """Attributes read off the ``param`` argument inside ``func``."""
    reads: set = set()
    for child in ast.walk(func):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == param
        ):
            reads.add(child.attr)
    return reads


def _string_elements(node: ast.AST) -> set | None:
    """Literal string elements of a set/frozenset/tuple/list display."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
        node.func.id in ("frozenset", "set", "tuple")
    ):
        if len(node.args) == 1:
            return _string_elements(node.args[0])
        return set()
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elements: set = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                elements.add(element.value)
            else:
                return None  # non-literal member: cannot verify
        return elements
    return None


class CacheKeyChecker(ProjectChecker):
    name = "cache-keys"
    codes = {
        "REP301": "QueryOptions field absent from request_key and the "
                  "exclusion list",
        "REP302": "stale entry in the cache-key exclusion list",
        "REP303": "cache-key builder is missing a required ingredient",
    }

    def check_project(self, sources: list) -> list:
        options_fields: dict = {}   # field -> (path, line)
        builders: dict = {}         # func name -> (source, node)
        exclusions: tuple | None = None  # (set, path, line)

        for source in sources:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef) and node.name == "QueryOptions":
                    for item in node.body:
                        if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name
                        ):
                            options_fields[item.target.id] = (
                                source.path, item.lineno,
                            )
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name in KEY_BUILDER_CONTRACTS:
                        builders[node.name] = (source, node)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == EXCLUSION_CONSTANT
                        ):
                            elements = _string_elements(node.value)
                            if elements is not None:
                                exclusions = (
                                    elements, source.path, node.lineno,
                                )

        diagnostics: list = []

        # Builder ingredient contracts (engage per builder found).
        for func_name, required in KEY_BUILDER_CONTRACTS.items():
            found = builders.get(func_name)
            if found is None:
                continue
            source, node = found
            tokens = _identifier_tokens(node)
            for token in sorted(required - tokens):
                diagnostics.append(
                    Diagnostic(
                        code="REP303",
                        message=(
                            f"key builder '{func_name}' no longer "
                            f"references required ingredient '{token}'; "
                            "a key missing it can serve stale or "
                            "colliding entries"
                        ),
                        path=source.path,
                        line=node.lineno,
                        checker=self.name,
                    )
                )

        # QueryOptions coverage (engages only with both sides present).
        request_key = builders.get("request_key")
        if not options_fields or request_key is None:
            return diagnostics
        source, node = request_key
        params = [arg.arg for arg in node.args.args]
        options_param = "options" if "options" in params else (
            params[2] if len(params) > 2 else None
        )
        keyed = (
            _options_attr_reads(node, options_param)
            if options_param else set()
        )
        excluded, excl_path, excl_line = (
            exclusions if exclusions is not None
            else (set(), source.path, node.lineno)
        )
        if exclusions is None:
            diagnostics.append(
                Diagnostic(
                    code="REP302",
                    message=(
                        f"no literal {EXCLUSION_CONSTANT} frozenset found "
                        "next to request_key; result-neutral options must "
                        "be excluded explicitly, not implicitly"
                    ),
                    path=source.path,
                    line=node.lineno,
                    checker=self.name,
                )
            )
        for field in sorted(options_fields):
            path, line = options_fields[field]
            if field in keyed and field in excluded:
                diagnostics.append(
                    Diagnostic(
                        code="REP302",
                        message=(
                            f"QueryOptions.{field} is both read by "
                            f"request_key and listed in "
                            f"{EXCLUSION_CONSTANT}; drop one"
                        ),
                        path=excl_path,
                        line=excl_line,
                        checker=self.name,
                    )
                )
            elif field not in keyed and field not in excluded:
                diagnostics.append(
                    Diagnostic(
                        code="REP301",
                        message=(
                            f"QueryOptions.{field} is neither part of "
                            f"request_key nor declared result-neutral in "
                            f"{EXCLUSION_CONSTANT}; a result-affecting "
                            "field outside the key serves wrong cached "
                            "results"
                        ),
                        path=path,
                        line=line,
                        checker=self.name,
                    )
                )
        for name in sorted(excluded - set(options_fields)):
            diagnostics.append(
                Diagnostic(
                    code="REP302",
                    message=(
                        f"{EXCLUSION_CONSTANT} lists '{name}' which is "
                        "not a QueryOptions field (renamed or removed?)"
                    ),
                    path=excl_path,
                    line=excl_line,
                    checker=self.name,
                )
            )
        return diagnostics
