"""Checker registry: every invariant checker the runner knows about."""

from repro.analysis.checkers.asyncio_hygiene import AsyncioHygieneChecker
from repro.analysis.checkers.cache_keys import CacheKeyChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.error_taxonomy import ErrorTaxonomyChecker
from repro.analysis.checkers.float_equality import FloatEqualityChecker
from repro.analysis.checkers.locking import LockDisciplineChecker
from repro.analysis.checkers.shims import DeadShimChecker
from repro.analysis.flow import (
    ErrorEscapeChecker,
    LockFlowChecker,
    TransitiveBlockingChecker,
)

__all__ = [
    "AsyncioHygieneChecker",
    "CacheKeyChecker",
    "DeadShimChecker",
    "DeterminismChecker",
    "ErrorEscapeChecker",
    "ErrorTaxonomyChecker",
    "FloatEqualityChecker",
    "LockDisciplineChecker",
    "LockFlowChecker",
    "TransitiveBlockingChecker",
    "all_checkers",
]


def all_checkers() -> list:
    """One fresh instance of every registered checker."""
    return [
        DeterminismChecker(),
        LockDisciplineChecker(),
        CacheKeyChecker(),
        AsyncioHygieneChecker(),
        ErrorTaxonomyChecker(),
        FloatEqualityChecker(),
        DeadShimChecker(),
        LockFlowChecker(),
        TransitiveBlockingChecker(),
        ErrorEscapeChecker(),
    ]
