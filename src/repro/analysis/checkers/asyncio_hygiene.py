"""Asyncio hygiene: no blocking calls inside coroutines.

The serving tier (:mod:`repro.net`) multiplexes every connection over
one event loop; a single blocking call inside a coroutine stalls every
client at once — the kind of regression that only shows up as tail
latency under load, long after the offending line merged.

``REP401`` flags, lexically inside an ``async def`` (nested *sync*
functions are excluded — they may legitimately run via
``asyncio.to_thread``):

* ``time.sleep(...)`` — use ``asyncio.sleep``;
* builtin ``open(...)`` and ``os.read``/``os.write`` — file I/O blocks
  the loop; do it in a thread;
* ``socket.create_connection`` / raw ``socket.socket`` use — streams
  belong to asyncio;
* ``subprocess.run``/``call``/``check_output``/``Popen`` — use
  ``asyncio.create_subprocess_exec``;
* ``<anything>.result()`` with no arguments — a
  ``concurrent.futures.Future`` (the service's submit() return type)
  blocks the loop until the worker finishes; await an
  ``asyncio.wrap_future`` or hand the callback to
  ``call_soon_threadsafe`` instead.

The ``.result()`` rule is name-based and may hit a non-future; that is
what ``# lint-ok: REP401`` is for — the suppression doubles as a
reviewer-visible claim that the call cannot block.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, SourceFile

_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep blocks the event loop; await "
                       "asyncio.sleep(...) instead",
    ("os", "read"): "os.read blocks the event loop; move file I/O to a "
                    "thread (asyncio.to_thread)",
    ("os", "write"): "os.write blocks the event loop; move file I/O to a "
                     "thread (asyncio.to_thread)",
    ("socket", "create_connection"): "blocking socket dial inside a "
                                     "coroutine; use asyncio streams",
    ("socket", "socket"): "raw socket construction inside a coroutine; "
                          "use asyncio streams",
    ("subprocess", "run"): "blocking subprocess call in a coroutine; use "
                           "asyncio.create_subprocess_exec",
    ("subprocess", "call"): "blocking subprocess call in a coroutine; use "
                            "asyncio.create_subprocess_exec",
    ("subprocess", "check_output"): "blocking subprocess call in a "
                                    "coroutine; use "
                                    "asyncio.create_subprocess_exec",
    ("subprocess", "Popen"): "blocking subprocess call in a coroutine; "
                             "use asyncio.create_subprocess_exec",
}

_BLOCKING_BUILTINS = {
    "open": "open() blocks the event loop on disk latency; do file I/O "
            "via asyncio.to_thread",
    "input": "input() blocks the event loop indefinitely",
}


class AsyncioHygieneChecker(Checker):
    name = "asyncio-hygiene"
    codes = {
        "REP401": "blocking call inside a coroutine",
    }

    def check(self, source: SourceFile) -> list:
        diagnostics: list = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                collector = _CoroutineVisitor(self, source)
                for statement in node.body:
                    collector.visit(statement)
                diagnostics.extend(collector.diagnostics)
        return diagnostics


class _CoroutineVisitor(ast.NodeVisitor):
    """Visits one coroutine body, skipping nested sync functions."""

    def __init__(self, checker, source) -> None:
        self.checker = checker
        self.source = source
        self.diagnostics: list = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync helper: runs wherever it is called, not on the loop

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)  # nested coroutine: same rules apply

    def _flag(self, node, message: str) -> None:
        self.diagnostics.append(
            self.checker.diagnostic(
                self.source, "REP401", node.lineno, message,
                col=node.col_offset,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _BLOCKING_BUILTINS:
            self._flag(node, _BLOCKING_BUILTINS[func.id])
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                message = _BLOCKING_MODULE_CALLS.get(
                    (func.value.id, func.attr)
                )
                if message is not None:
                    self._flag(node, message)
                    self.generic_visit(node)
                    return
            if func.attr == "result" and not node.args and not node.keywords:
                self._flag(
                    node,
                    ".result() on a future blocks the event loop until "
                    "the worker finishes; await asyncio.wrap_future(...) "
                    "or resolve via call_soon_threadsafe",
                )
        self.generic_visit(node)
