"""Asyncio hygiene: no blocking calls inside coroutines.

The serving tier (:mod:`repro.net`) multiplexes every connection over
one event loop; a single blocking call inside a coroutine stalls every
client at once — the kind of regression that only shows up as tail
latency under load, long after the offending line merged.

``REP401`` flags, lexically inside an ``async def`` (nested *sync*
functions are excluded — they may legitimately run via
``asyncio.to_thread``):

* ``time.sleep(...)`` — use ``asyncio.sleep``;
* builtin ``open(...)`` and ``os.read``/``os.write`` — file I/O blocks
  the loop; do it in a thread;
* ``socket.create_connection`` / raw ``socket.socket`` use — streams
  belong to asyncio;
* ``subprocess.run``/``call``/``check_output``/``Popen`` — use
  ``asyncio.create_subprocess_exec``;
* ``<anything>.result()`` with no arguments — a
  ``concurrent.futures.Future`` (the service's submit() return type)
  blocks the loop until the worker finishes; await an
  ``asyncio.wrap_future`` or hand the callback to
  ``call_soon_threadsafe`` instead.

Blocking calls are recognised through the file's import bindings
(:class:`repro.analysis.imports.ImportMap`), so ``from time import
sleep``, ``from time import sleep as snooze`` and ``import time as t``
all flag — not just the ``time.sleep`` spelling. Directly awaited
calls are exempt from the ``.result()`` shape rule: ``await
event.wait()`` is the correct asyncio idiom, not a block.

The ``.result()`` rule is name-based and may hit a non-future; that is
what ``# lint-ok: REP401`` is for — the suppression doubles as a
reviewer-visible claim that the call cannot block.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, SourceFile
from repro.analysis.imports import ImportMap, loop_blocking_call


class AsyncioHygieneChecker(Checker):
    name = "asyncio-hygiene"
    codes = {
        "REP401": "blocking call inside a coroutine",
    }

    def check(self, source: SourceFile) -> list:
        diagnostics: list = []
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                collector = _CoroutineVisitor(self, source, imports)
                for statement in node.body:
                    collector.visit(statement)
                diagnostics.extend(collector.diagnostics)
        return diagnostics


class _CoroutineVisitor(ast.NodeVisitor):
    """Visits one coroutine body, skipping nested sync functions."""

    def __init__(self, checker, source, imports: ImportMap) -> None:
        self.checker = checker
        self.source = source
        self.imports = imports
        self.diagnostics: list = []
        self._awaited: set = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync helper: runs wherever it is called, not on the loop

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)  # nested coroutine: same rules apply

    def _flag(self, node, message: str) -> None:
        self.diagnostics.append(
            self.checker.diagnostic(
                self.source, "REP401", node.lineno, message,
                col=node.col_offset,
            )
        )

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        message = loop_blocking_call(
            node, self.imports, awaited=id(node) in self._awaited
        )
        if message is not None:
            self._flag(node, message)
        self.generic_visit(node)
