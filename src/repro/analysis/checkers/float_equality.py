"""Float equality in probability code: one rounding rule, no ``==``.

Probabilities in this reproduction flow through one quantization rule —
``_milli`` (:mod:`repro.index.builder`) — precisely because exact float
comparison at bucket boundaries mis-classified ``alpha == beta == 0.7``
in PR 4. Comparing probabilities with ``==``/``!=`` against a fractional
literal reintroduces that bug class: ``0.7`` is not representable, so
whether ``p == 0.7`` holds depends on the arithmetic path that produced
``p``.

``REP601`` flags equality comparisons against fractional float literals
in the probability-bearing modules (``repro.pgm``, ``repro.pgd``,
``repro.peg``, ``repro.query``, ``repro.index``, ``repro.relational``,
``repro.delta``). Comparisons against ``0.0`` / ``1.0`` / ``-1.0``
stay legal — they are exactly representable and the idiomatic guards
for "impossible" / "certain" / sentinel. Thresholding (``<``, ``>=``)
is untouched. Where exact bit equality *is* the contract (differential
assertions), say so with ``# lint-ok: REP601 <why>``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, SourceFile

SCOPED_MODULE_PREFIXES = (
    "repro.pgm",
    "repro.pgd",
    "repro.peg",
    "repro.query",
    "repro.index",
    "repro.relational",
    "repro.delta",
)

_EXACT_FLOATS = {0.0, 1.0, -1.0}


def _fractional_float(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value not in _EXACT_FLOATS
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        return node.operand.value not in _EXACT_FLOATS
    return False


class FloatEqualityChecker(Checker):
    name = "float-equality"
    codes = {
        "REP601": "float equality against a fractional literal in "
                  "probability code",
    }

    def check(self, source: SourceFile) -> list:
        if not source.module.startswith(SCOPED_MODULE_PREFIXES):
            return []
        diagnostics: list = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _fractional_float(left) or _fractional_float(right):
                    diagnostics.append(
                        self.diagnostic(
                            source, "REP601", node.lineno,
                            "equality against a fractional float literal "
                            "is representation-dependent; compare through "
                            "the _milli rounding rule or use an explicit "
                            "tolerance",
                            col=node.col_offset,
                        )
                    )
                    break
        return diagnostics
