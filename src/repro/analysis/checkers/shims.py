"""Dead-shim detection: re-export modules must not accumulate.

PR 6 folded ``repro.utils.timing`` into ``repro.obs.timing`` and left a
compatibility shim behind "temporarily". Shims rot: every one is a
second import path for the same objects, splitting ``isinstance``
identities across reload boundaries and hiding the real home of the
code from readers and tooling alike.

``REP701`` flags a module whose executable body is nothing but imports
(plus an optional docstring and an ``__all__`` assignment): a pure
re-export surface. Package ``__init__.py`` files are exempt — curating
a package namespace is exactly their job. A shim that must live through
a deprecation window can carry ``# lint-ok: REP701 remove after vX.Y``
on its first import line, making the debt visible and dated.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, SourceFile

_EXEMPT_BASENAMES = {"__init__", "__main__"}


class DeadShimChecker(Checker):
    name = "dead-shim"
    codes = {
        "REP701": "module is a pure re-export shim",
    }

    def check(self, source: SourceFile) -> list:
        basename = source.module.rsplit(".", 1)[-1]
        if basename in _EXEMPT_BASENAMES:
            return []
        body = list(source.tree.body)
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ) and isinstance(body[0].value.value, str):
            body = body[1:]  # docstring
        if not body:
            return []
        imports = 0
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                imports += 1
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
                isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"
            ):
                continue
            return []  # real code: not a shim
        if imports == 0:
            return []
        first = next(
            node for node in source.tree.body
            if isinstance(node, (ast.Import, ast.ImportFrom))
        )
        return [
            self.diagnostic(
                source, "REP701", first.lineno,
                f"module '{source.module}' only re-exports other modules; "
                "fold it into its target and update importers (or date "
                "the deprecation window in a suppression)",
            )
        ]
