"""Lock-discipline checker: the ``# guarded-by:`` convention, enforced.

PR 6 fixed ``ServiceStats.requests`` reading a multi-field sum without
its lock — a torn read only visible under thread contention. The fix
was easy; *finding* it was review vigilance. This checker mechanizes
the convention so the next torn read is a CI failure, not a code-review
catch.

Annotation grammar
------------------
An attribute is declared guarded where it is initialized, either with a
trailing comment or a comment block immediately above::

    self.hits = 0  # guarded-by: _lock
    #: guarded-by: _gate
    self._inflight = {}

Two guard kinds:

* ``# guarded-by: <attr>`` — a lock-like object stored on the same
  instance (``threading.Lock``, ``RLock``, ``Condition``). Every other
  read or write of the attribute must sit lexically inside
  ``with self.<attr>:`` (``REP201``), or inside a function whose
  ``def`` line carries ``# holds-lock: <attr>`` — the documented
  "callers hold the lock" contract for private helpers.
* ``# guarded-by: event-loop`` — the attribute is confined to the
  asyncio event loop thread instead of a lock. Touches are legal in
  ``__init__``, in ``async def`` methods (coroutines run on the loop
  by construction), and in sync methods whose ``def`` line carries
  ``# loop-only`` (e.g. ``call_soon_threadsafe`` targets). Anything
  else flags ``REP202``: it might run on a foreign thread.

``__init__`` is exempt for both kinds — no other thread can hold a
reference during construction. A ``guarded-by`` naming a lock attribute
the class never assigns flags ``REP203`` (a typo'd guard silently
protects nothing).

Limits, deliberately accepted: the analysis is lexical, so a lambda or
nested ``def`` created inside a ``with`` block counts as guarded even
though it may execute after release, and locks held by callers are
only visible through ``holds-lock``. Both are documented contracts
rather than inference — which is the point: the annotation *is* the
design record, and the checker keeps the code honest against it.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    GUARDED_BY_RE,
    HOLDS_LOCK_RE,
    LOOP_ONLY_RE,
    Checker,
    SourceFile,
)

#: Guard spelling for event-loop confinement (no lock object involved).
EVENT_LOOP_GUARD = "event-loop"


def _self_attr_target(node: ast.AST) -> str | None:
    """``X`` when ``node`` is ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_guards(source: SourceFile, class_node: ast.ClassDef) -> dict:
    """``{attr: (guard, decl_line)}`` declared in one class body."""
    guards: dict = {}
    for node in ast.walk(class_node):
        targets: list = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            attr = _self_attr_target(target)
            if attr is None:
                continue
            comment = source.comment_on(node.lineno)
            match = GUARDED_BY_RE.search(comment)
            if match is None:
                match = GUARDED_BY_RE.search(
                    source.leading_comment_block(node.lineno)
                )
            if match is not None:
                guards[attr] = (match.group("guard"), node.lineno)
    return guards


def _lock_attrs_assigned(class_node: ast.ClassDef) -> set:
    """Every ``self.X`` ever assigned in the class (guard existence)."""
    assigned: set = set()
    for node in ast.walk(class_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _self_attr_target(target)
                if attr is not None:
                    assigned.add(attr)
    return assigned


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    codes = {
        "REP201": "guarded attribute touched outside `with self.<lock>`",
        "REP202": "loop-confined attribute touched off the event loop",
        "REP203": "guarded-by names a lock the class never assigns",
    }

    def check(self, source: SourceFile) -> list:
        diagnostics: list = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                diagnostics.extend(self._check_class(source, node))
        return diagnostics

    def _check_class(self, source: SourceFile, class_node: ast.ClassDef) -> list:
        guards = _collect_guards(source, class_node)
        if not guards:
            return []
        diagnostics: list = []
        assigned = _lock_attrs_assigned(class_node)
        for attr, (guard, decl_line) in guards.items():
            if guard != EVENT_LOOP_GUARD and guard not in assigned:
                diagnostics.append(
                    self.diagnostic(
                        source, "REP203", decl_line,
                        f"attribute '{attr}' is guarded-by '{guard}' but "
                        f"the class never assigns self.{guard}",
                    )
                )
        visitor = _ClassVisitor(self, source, class_node, guards)
        for statement in class_node.body:
            visitor.visit(statement)
        diagnostics.extend(visitor.diagnostics)
        return diagnostics


class _ClassVisitor(ast.NodeVisitor):
    """Walks one class body tracking function / with-lock context."""

    def __init__(self, checker, source, class_node, guards) -> None:
        self.checker = checker
        self.source = source
        self.class_node = class_node
        self.guards = guards
        self.diagnostics: list = []
        #: Stack of (func_name, is_async, loop_only, holds_locks).
        self._funcs: list = []
        #: Stack of held lock-attribute names (lexical `with` nesting).
        self._locks: list = []

    # -- context tracking ----------------------------------------------

    def _function_markers(self, node) -> tuple:
        comment = self.source.comment_on(node.lineno)
        holds = {
            m.group("guard") for m in HOLDS_LOCK_RE.finditer(comment)
        }
        loop_only = bool(LOOP_ONLY_RE.search(comment))
        return loop_only, holds

    def _visit_function(self, node, is_async: bool) -> None:
        loop_only, holds = self._function_markers(node)
        self._funcs.append((node.name, is_async, loop_only, holds))
        try:
            self.generic_visit(node)
        finally:
            self._funcs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda inherits its enclosing context (lexical model).
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # A nested class runs its own _check_class pass via ast.walk in
        # the checker; do not double-visit its body here.
        pass

    def _with_locks(self, items) -> list:
        held: list = []
        for item in items:
            attr = _self_attr_target(item.context_expr)
            if attr is not None:
                held.append(attr)
        return held

    def _visit_with(self, node) -> None:
        held = self._with_locks(node.items)
        self._locks.extend(held)
        try:
            self.generic_visit(node)
        finally:
            del self._locks[len(self._locks) - len(held):]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- the check -----------------------------------------------------

    def _in_init(self) -> bool:
        return bool(self._funcs) and self._funcs[0][0] == "__init__"

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr_target(node)
        if attr is not None and attr in self.guards and not self._in_init():
            guard, _ = self.guards[attr]
            if guard == EVENT_LOOP_GUARD:
                self._check_loop_confined(node, attr)
            else:
                self._check_lock_guarded(node, attr, guard)
        self.generic_visit(node)

    def _check_lock_guarded(self, node, attr: str, guard: str) -> None:
        if guard in self._locks:
            return
        if any(guard in holds for _, _, _, holds in self._funcs):
            return
        self.diagnostics.append(
            self.checker.diagnostic(
                self.source, "REP201", node.lineno,
                f"'{self.class_node.name}.{attr}' is guarded-by "
                f"'{guard}' but is touched outside `with self.{guard}` "
                f"(add the with block, or mark the enclosing def "
                f"`# holds-lock: {guard}` if callers hold it)",
                col=node.col_offset,
            )
        )

    def _check_loop_confined(self, node, attr: str) -> None:
        if not self._funcs:
            return  # class-body default: construction-time
        _, is_async, loop_only, _ = self._funcs[0]
        if is_async or loop_only:
            return
        self.diagnostics.append(
            self.checker.diagnostic(
                self.source, "REP202", node.lineno,
                f"'{self.class_node.name}.{attr}' is event-loop confined "
                f"but is touched in sync method "
                f"'{self._funcs[0][0]}' with no `# loop-only` marker — "
                "it may run on a foreign thread; dispatch via "
                "call_soon_threadsafe or mark the method",
                col=node.col_offset,
            )
        )
