"""Error taxonomy: serving layers raise typed errors, never generic ones.

The network tier's whole fault story rests on every failure being
classifiable: :meth:`QueryServer._classify` maps typed
:mod:`repro.utils.errors` exceptions to wire codes, the client decides
retry-vs-fail on the type, and the chaos suite asserts
"correct result or clean typed error". A ``raise Exception(...)``
anywhere in ``repro.service``, ``repro.net`` or the CLI collapses to
``INTERNAL`` on the wire and defeats all of it.

``REP501`` flags ``raise`` statements in those modules whose exception
is one of the generic classes (``Exception``, ``BaseException``,
``RuntimeError``, ``SystemError``). Bare re-raises, typed library
errors, and builtin *contract* errors (``ValueError``/``TypeError``/
``KeyError`` for caller programming mistakes — a deliberate, documented
carve-out) stay legal.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, SourceFile

#: Modules whose raise sites feed the wire-error classification.
SCOPED_MODULE_PREFIXES = (
    "repro.service",
    "repro.net",
    "repro.cli",
)

_GENERIC_EXCEPTIONS = {
    "Exception", "BaseException", "RuntimeError", "SystemError",
}


class ErrorTaxonomyChecker(Checker):
    name = "error-taxonomy"
    codes = {
        "REP501": "generic exception raised in a serving-layer module",
    }

    def check(self, source: SourceFile) -> list:
        if not source.module.startswith(SCOPED_MODULE_PREFIXES):
            return []
        diagnostics: list = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name in _GENERIC_EXCEPTIONS:
                diagnostics.append(
                    self.diagnostic(
                        source, "REP501", node.lineno,
                        f"raise {name} in a serving-layer module is "
                        "unclassifiable on the wire; raise a typed "
                        "repro.utils.errors subclass so clients get a "
                        "meaningful error code",
                        col=node.col_offset,
                    )
                )
        return diagnostics

    @staticmethod
    def _raised_name(exc: ast.AST) -> str | None:
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        if isinstance(exc, ast.Attribute):
            return exc.attr
        return None
