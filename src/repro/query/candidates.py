"""Finding and pruning path candidates (Section 5.2.2).

For every query path ``P`` the engine first fetches all index entries
matching ``P``'s label sequence above the threshold, then prunes them
with precomputed context information:

* node-level: a PEG node ``v`` can match a query node ``n`` only if for
  every label σ required around ``n``, ``c(v, σ) >= c(n, σ)`` and
  ``Pr(v.l = l_Q(n)) * fpu(v, σ)^c(n, σ) >= α``,
* path-level: the path's own probability times the neighborhood
  upperbound ``pu(P^u)`` times the cycle-edge probability ``cpr(P^u)``
  must reach α.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.builder import enumerate_paths_for_sequence
from repro.index.context import ContextInformation
from repro.index.protocol import PathIndexProtocol
from repro.obs.trace import current_span
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.decompose import QueryPath
from repro.query.query_graph import QueryGraph


@dataclass(frozen=True)
class PathStatistics:
    """Query-side statistics of one decomposition path.

    Attributes
    ----------
    neighbors:
        ``Γ(P)`` — query nodes off the path adjacent to it.
    reverse_neighbors:
        ``rv(P, m)`` — for each ``m ∈ Γ(P)``, the path positions adjacent
        to ``m``.
    cycles:
        ``cyc`` edges as position pairs ``(i, j)`` with ``i < j``: query
        edges between path nodes that are not path edges. Each such edge
        appears exactly once.
    """

    neighbors: tuple
    reverse_neighbors: dict
    cycles: tuple


def compute_path_statistics(query: QueryGraph, path: QueryPath) -> PathStatistics:
    """Compute ``Γ(P)``, ``rv(P, m)`` and path cycles for a query path."""
    on_path = {node: pos for pos, node in enumerate(path.nodes)}
    neighbors = []
    reverse: dict = {}
    for node, pos in on_path.items():
        for adjacent in query.neighbors(node):
            if adjacent in on_path:
                continue
            if adjacent not in reverse:
                reverse[adjacent] = []
                neighbors.append(adjacent)
            reverse[adjacent].append(pos)
    path_edges = path.path_edges
    cycles = []
    nodes_set = set(path.nodes)
    for edge in query.edges:
        if edge in path_edges or not edge <= nodes_set:
            continue
        node_a, node_b = tuple(edge)
        pos_a, pos_b = on_path[node_a], on_path[node_b]
        cycles.append((min(pos_a, pos_b), max(pos_a, pos_b)))
    return PathStatistics(
        neighbors=tuple(neighbors),
        reverse_neighbors={m: tuple(ps) for m, ps in reverse.items()},
        cycles=tuple(sorted(cycles)),
    )


class CandidateFinder:
    """Retrieves and prunes candidate matches for query paths."""

    def __init__(
        self,
        peg: ProbabilisticEntityGraph,
        query: QueryGraph,
        alpha: float,
        index: PathIndexProtocol | None = None,
        context: ContextInformation | None = None,
        use_context: bool = True,
    ) -> None:
        self.peg = peg
        self.query = query
        self.alpha = float(alpha)
        self.index = index
        self.context = context
        self.use_context = bool(use_context) and context is not None
        self._node_cache: dict = {}
        # Query node-level statistics: c(n, σ) for the labels around n.
        self._query_label_counts = {
            node: self._label_counts(node) for node in query.nodes
        }

    def _label_counts(self, node) -> dict:
        counts: dict = {}
        for neighbor in self.query.neighbors(node):
            label = self.query.label(neighbor)
            counts[label] = counts.get(label, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Node-level pruning
    # ------------------------------------------------------------------

    def node_allowed(self, query_node, peg_node: int) -> bool:
        """Node-level context test of Section 5.2.2 (memoized)."""
        key = (query_node, peg_node)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        allowed = self._node_allowed_impl(query_node, peg_node)
        self._node_cache[key] = allowed
        return allowed

    def _node_allowed_impl(self, query_node, peg_node: int) -> bool:
        label = self.query.label(query_node)
        p_label = self.peg.label_probability_id(peg_node, label)
        if p_label <= 0.0:
            return False
        if not self.use_context:
            return True
        context = self.context
        for sigma, required in self._query_label_counts[query_node].items():
            if context.cardinality(peg_node, sigma) < required:
                return False
            fpu = context.full_upperbound(peg_node, sigma)
            if p_label * (fpu ** required) < self.alpha:
                return False
        return True

    # ------------------------------------------------------------------
    # Path-level pruning
    # ------------------------------------------------------------------

    def neighborhood_upperbound(
        self, path: QueryPath, stats: PathStatistics, candidate_nodes: tuple
    ) -> float:
        """``pu(P^u)``: bound on the probability of matching ``Γ(P)``.

        For each path neighbor ``m``, one adjacent path node contributes
        its full upperbound ``fpu`` and the remaining ones their partial
        upperbounds ``ppu``; the tightest choice over ``rv(P, m)`` is
        used, and bounds multiply over all neighbors.
        """
        context = self.context
        query = self.query
        bound = 1.0
        for m in stats.neighbors:
            label_m = query.label(m)
            positions = stats.reverse_neighbors[m]
            ppu_values = [
                context.partial_upperbound(candidate_nodes[pos], label_m)
                for pos in positions
            ]
            fpu_values = [
                context.full_upperbound(candidate_nodes[pos], label_m)
                for pos in positions
            ]
            ppu_product = 1.0
            for value in ppu_values:
                ppu_product *= value
            best = None
            for fpu, ppu in zip(fpu_values, ppu_values):
                if ppu > 0.0:
                    candidate = fpu * (ppu_product / ppu)
                else:
                    # The chosen node replaces its (zero) ppu by fpu; the
                    # remaining product must be rebuilt without it.
                    others = 1.0
                    for other in ppu_values:
                        if other is not ppu:
                            others *= other
                    candidate = fpu * others
                if best is None or candidate < best:
                    best = candidate
            bound *= best if best is not None else 0.0
            if bound == 0.0:
                return 0.0
        return bound

    def cycle_probability(
        self, path: QueryPath, stats: PathStatistics, candidate_nodes: tuple
    ) -> float:
        """``cpr(P^u)``: probability of the query's cycle edges on the path."""
        prob = 1.0
        for pos_a, pos_b in stats.cycles:
            label_a = self.query.label(path.nodes[pos_a])
            label_b = self.query.label(path.nodes[pos_b])
            prob *= self.peg.edge_probability_id(
                candidate_nodes[pos_a],
                candidate_nodes[pos_b],
                label_a,
                label_b,
            )
            if prob == 0.0:
                return 0.0
        return prob

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def find(self, path: QueryPath) -> tuple:
        """Candidates of a query path: ``(pruned list, raw index count)``.

        Falls back to on-demand enumeration when no index is attached or
        the threshold is below the index's β (the paper's footnote 1).
        """
        label_seq = self.query.label_sequence(path.nodes)
        if self.index is not None and self.alpha >= self.index.beta:
            raw = self.index.lookup(label_seq, self.alpha)
        else:
            raw = enumerate_paths_for_sequence(self.peg, label_seq, self.alpha)
            # Marks partitions that never touched the index, so a trace
            # with zero store reads explains itself.
            current_span().set("on_demand", True)
        raw_count = len(raw)
        if not self.use_context:
            # Even without context pruning, node candidacy on label
            # probability is implied by the index; keep everything.
            return raw, raw_count
        stats = compute_path_statistics(self.query, path)
        pruned = []
        for candidate in raw:
            nodes = candidate.nodes
            if not all(
                self.node_allowed(query_node, peg_node)
                for query_node, peg_node in zip(path.nodes, nodes)
            ):
                continue
            base = candidate.prle * candidate.prn
            if base * self.neighborhood_upperbound(path, stats, nodes) * \
                    self.cycle_probability(path, stats, nodes) < self.alpha:
                continue
            pruned.append(candidate)
        return pruned, raw_count
