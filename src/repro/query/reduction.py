"""Vectorized (numpy) backend of the joint search-space reduction.

:class:`VectorizedKPartiteGraph` is the flat-array counterpart of
:class:`repro.query.kpartite.CandidateKPartiteGraph`: every partition
becomes contiguous arrays (``w1``, ``w2``, an ``alive`` mask and the
perception vectors as one ``(num_vertices, k)`` float64 matrix), links
become CSR-style ``indptr``/``indices`` arrays per ordered partition
pair, and both reduction principles run as whole-array passes:

* **structure** — per partition and required neighbor partition, one
  boolean scatter marks vertices with at least one alive CSR neighbor;
  the complement is deleted, swept to fixpoint,
* **upperbounds** — Jacobi rounds: a segment-max over each CSR
  neighborhood (``np.maximum.reduceat``) rebuilds every perception
  vector from the pre-round state, and one row-product threshold test
  against α deletes vertices in bulk.

The candidate scores ``w1`` are computed by vectorized gather over
per-label node-probability arrays and a ``searchsorted`` edge-probability
table (:class:`PegProbabilityArrays`), built once per query from the
PEG.

Both backends consume the identical link structure
(:func:`repro.query.kpartite.build_candidate_links`) and perform
floating-point operations in the same per-element order, so alive sets,
partition sizes and removal counts agree with the Python reference; the
work counters (``message_updates``, ``rounds``) are backend-dependent.
"""

from __future__ import annotations

import numpy as np

from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.decompose import Decomposition
from repro.query.kpartite import (
    _CONVERGENCE_EPSILON,
    ReductionStats,
    build_candidate_links,
)


class PegProbabilityArrays:
    """Probability arrays gathered from a PEG, cached per label.

    ``label_probabilities(σ)`` is a dense float64 array over node ids;
    ``edge_probabilities`` answers bulk edge-probability gathers through
    a sorted composite-key table (``min_id * num_nodes + max_id``) and
    ``np.searchsorted``. Arrays are built lazily per label (pair).

    The tables depend only on the immutable PEG, so one instance should
    be shared across queries (``QueryEngine`` keeps one per engine and
    hands it to every :class:`VectorizedKPartiteGraph`); repeated
    queries then pay a pure array gather, not an O(nodes) rebuild.
    Concurrent readers are safe: cache entries are idempotent values
    inserted under the GIL.
    """

    def __init__(self, peg: ProbabilisticEntityGraph) -> None:
        self.peg = peg
        # Size by the *id space*, not the live-entity count: after live
        # entity merges (repro.delta), tombstoned ids remain and new ids
        # are appended, so ids can exceed peg.num_nodes.
        self.num_nodes = len(peg.node_ids())
        self._label_probs: dict = {}
        self._edge_keys = None
        self._edge_dists = None
        self._edge_probs: dict = {}
        self._existence = None
        self._components = None

    def label_probabilities(self, label) -> np.ndarray:
        """``Pr(v.l = label)`` for every node id, as one dense array."""
        array = self._label_probs.get(label)
        if array is None:
            peg = self.peg
            array = np.fromiter(
                (
                    peg.label_probability_id(node, label)
                    for node in range(self.num_nodes)
                ),
                dtype=np.float64,
                count=self.num_nodes,
            )
            self._label_probs[label] = array
        return array

    def existence_probabilities(self) -> np.ndarray:
        """``Pr(v.n = T)`` for every node id, as one dense array.

        Each entry equals the single-entity component marginal
        (``peg.existence_probability_id``), so for a node set whose
        members live in pairwise-distinct identity components the
        ordered product of gathers reproduces
        ``peg.existence_marginal_ids`` bit-for-bit.
        """
        if self._existence is None:
            peg = self.peg
            self._existence = np.fromiter(
                (
                    peg.existence_probability_id(node)
                    for node in range(self.num_nodes)
                ),
                dtype=np.float64,
                count=self.num_nodes,
            )
        return self._existence

    def component_indexes(self) -> np.ndarray:
        """Identity-component index for every node id, as one int array."""
        if self._components is None:
            peg = self.peg
            self._components = np.fromiter(
                (
                    peg.component_index_id(node)
                    for node in range(self.num_nodes)
                ),
                dtype=np.int64,
                count=self.num_nodes,
            )
        return self._components

    def _edge_table(self) -> tuple:
        if self._edge_keys is None:
            n = self.num_nodes
            items = sorted(self.peg.edge_ids(), key=lambda item: item[0])
            keys = np.fromiter(
                (id_a * n + id_b for (id_a, id_b), _ in items),
                dtype=np.int64,
                count=len(items),
            )
            # Publish keys last: concurrent readers gate on _edge_keys,
            # so _edge_dists must already be visible when they pass.
            self._edge_dists = [dist for _, dist in items]
            self._edge_keys = keys
        return self._edge_keys, self._edge_dists

    def edge_probabilities(
        self, ids_a: np.ndarray, ids_b: np.ndarray, label_a, label_b
    ) -> np.ndarray:
        """Bulk ``Pr((a, b).e = T)`` under the two endpoint labels.

        Conditional edge CPTs canonicalize their label pair, so one
        cached value array per unordered label pair serves both
        orientations; missing edges gather 0.0.
        """
        keys, dists = self._edge_table()
        pair = tuple(sorted((label_a, label_b), key=repr))
        values = self._edge_probs.get(pair)
        if values is None:
            values = np.fromiter(
                (dist.probability(label_a, label_b) for dist in dists),
                dtype=np.float64,
                count=len(dists),
            )
            self._edge_probs[pair] = values
        ids_a = np.asarray(ids_a, dtype=np.int64)
        ids_b = np.asarray(ids_b, dtype=np.int64)
        wanted = (
            np.minimum(ids_a, ids_b) * self.num_nodes
            + np.maximum(ids_a, ids_b)
        )
        if keys.size == 0:
            return np.zeros(wanted.shape, dtype=np.float64)
        position = np.searchsorted(keys, wanted).clip(0, keys.size - 1)
        found = keys[position] == wanted
        return np.where(found, values[position], 0.0)


class VectorizedKPartiteGraph:
    """Flat-array candidate k-partite graph (Definition 6, vectorized).

    Same constructor contract and reduction semantics as
    :class:`repro.query.kpartite.CandidateKPartiteGraph`; ``parallel``
    and ``num_threads`` are accepted for signature parity but ignored
    (whole-array numpy passes replace the thread pool). Pass a shared
    ``arrays`` (:class:`PegProbabilityArrays`) to amortize the
    per-label probability tables across queries.
    """

    def __init__(
        self,
        peg: ProbabilisticEntityGraph,
        decomposition: Decomposition,
        candidates: dict,
        alpha: float,
        parallel: bool = False,
        num_threads: int = 4,
        links=None,
        arrays: PegProbabilityArrays | None = None,
    ) -> None:
        self.peg = peg
        self.decomposition = decomposition
        self.alpha = float(alpha)
        self.k = len(decomposition.paths)
        self.arrays = arrays if arrays is not None else PegProbabilityArrays(peg)
        self.candidates = [list(candidates[i]) for i in range(self.k)]
        self._build_vertices()
        if links is None:
            links = build_candidate_links(
                peg, decomposition, candidates, self.alpha
            )
        self._build_csr(links)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_vertices(self) -> None:
        decomposition = self.decomposition
        query = decomposition.query
        arrays = self.arrays
        self.node_matrix: list = []
        self.w1: list = []
        self.w2: list = []
        self.alive: list = []
        self.vectors: list = []
        for i, path in enumerate(decomposition.paths):
            cands = self.candidates[i]
            n = len(cands)
            positions = len(path.nodes)
            nodes = np.array(
                [candidate.nodes for candidate in cands], dtype=np.int64
            ).reshape(n, positions)
            position_of = {node: pos for pos, node in enumerate(path.nodes)}
            # Multiply factors in the reference backend's order so the
            # float results are bit-identical.
            w1 = np.ones(n, dtype=np.float64)
            for query_node in decomposition.covered_nodes[i]:
                probs = arrays.label_probabilities(query.label(query_node))
                w1 *= probs[nodes[:, position_of[query_node]]]
            for edge in decomposition.covered_edges[i]:
                node_a, node_b = tuple(edge)
                w1 *= arrays.edge_probabilities(
                    nodes[:, position_of[node_a]],
                    nodes[:, position_of[node_b]],
                    query.label(node_a),
                    query.label(node_b),
                )
            w2 = np.fromiter(
                (candidate.prn for candidate in cands),
                dtype=np.float64,
                count=n,
            )
            vectors = np.ones((n, self.k), dtype=np.float64)
            vectors[:, i] = w1
            self.node_matrix.append(nodes)
            self.w1.append(w1)
            self.w2.append(w2)
            self.alive.append(np.ones(n, dtype=bool))
            self.vectors.append(vectors)

    def _build_csr(self, links) -> None:
        # One CSR per ordered joining pair (i, j): row = partition-i
        # vertex id, column entries = linked partition-j vertex ids.
        # ``links`` is either the reference dict of pair lists or a
        # LinkSet of numpy arrays (already row-major sorted for i < j).
        from_arrays = hasattr(links, "pair_lists")
        self._csr: dict = {}
        for i, joined in self.decomposition.joins_with.items():
            for j in joined:
                presorted = False
                if from_arrays:
                    if i < j:
                        rows, cols = links.get((i, j), (None, None))
                        presorted = True
                    else:
                        cols, rows = links.get((j, i), (None, None))
                    if rows is None:
                        rows = cols = np.zeros(0, dtype=np.int64)
                elif i < j:
                    pairs = links.get((i, j), ())
                    rows = np.fromiter(
                        (vid for vid, _ in pairs), dtype=np.int64,
                        count=len(pairs),
                    )
                    cols = np.fromiter(
                        (uid for _, uid in pairs), dtype=np.int64,
                        count=len(pairs),
                    )
                else:
                    pairs = links.get((j, i), ())
                    rows = np.fromiter(
                        (uid for _, uid in pairs), dtype=np.int64,
                        count=len(pairs),
                    )
                    cols = np.fromiter(
                        (vid for vid, _ in pairs), dtype=np.int64,
                        count=len(pairs),
                    )
                n_i = len(self.candidates[i])
                if rows.size and not presorted:
                    order = np.lexsort((cols, rows))
                    rows = rows[order]
                    cols = cols[order]
                counts = np.bincount(rows, minlength=n_i)
                indptr = np.zeros(n_i + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
                self._csr[(i, j)] = (indptr, cols, rows)

    # ------------------------------------------------------------------
    # Introspection (the matcher's interface)
    # ------------------------------------------------------------------

    def alive_counts(self) -> tuple:
        """Number of surviving vertices per partition."""
        return tuple(int(mask.sum()) for mask in self.alive)

    def search_space_size(self) -> float:
        """Product of surviving partition sizes (the paper's metric)."""
        result = 1.0
        for count in self.alive_counts():
            result *= count
        return result

    def alive_vertex_ids(self, i: int) -> list:
        """Vertex ids of partition ``i`` still alive, ascending."""
        return np.nonzero(self.alive[i])[0].tolist()

    def candidate_of(self, i: int, vid: int):
        """The candidate path match behind vertex ``vid`` of partition ``i``."""
        return self.candidates[i][vid]

    def is_alive(self, i: int, vid: int) -> bool:
        """Whether vertex ``vid`` of partition ``i`` survived so far."""
        return bool(self.alive[i][vid])

    def linked(self, i: int, vid: int, j: int) -> frozenset:
        """Alive partition-``j`` vertices linked to vertex ``vid`` of ``i``."""
        entry = self._csr.get((i, j))
        if entry is None:
            return frozenset()
        indptr, cols, _ = entry
        neighbors = cols[indptr[vid]:indptr[vid + 1]]
        return frozenset(neighbors[self.alive[j][neighbors]].tolist())

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------

    def reduce(
        self,
        use_structure: bool = True,
        use_upperbounds: bool = True,
        max_rounds: int = 1000,
    ) -> ReductionStats:
        """Run both reductions to fixpoint and return statistics."""
        stats = ReductionStats(initial_sizes=self.alive_counts())
        if use_structure:
            stats.structure_removed += self._structure_fixpoint()
        stats.after_structure_sizes = self.alive_counts()
        if use_upperbounds:
            self._upperbound_rounds(stats, use_structure, max_rounds)
        stats.final_sizes = self.alive_counts()
        return stats

    def _structure_fixpoint(self) -> int:
        """Delete vertices missing an alive link into a required partition."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for i in range(self.k):
                required = self.decomposition.joins_with.get(i, frozenset())
                alive_i = self.alive[i]
                if not required or not alive_i.any():
                    continue
                fail = np.zeros(alive_i.shape, dtype=bool)
                for j in required:
                    indptr, cols, rows = self._csr[(i, j)]
                    has_neighbor = np.zeros(alive_i.shape, dtype=bool)
                    if rows.size:
                        has_neighbor[rows[self.alive[j][cols]]] = True
                    fail |= ~has_neighbor
                kill = alive_i & fail
                if kill.any():
                    alive_i[kill] = False
                    removed += int(kill.sum())
                    changed = True
        return removed

    def _segment_max(self, i: int, j: int) -> np.ndarray:
        """``(n_i, k)`` column-wise max over alive CSR neighbors in ``j``."""
        indptr, cols, _ = self._csr[(i, j)]
        n_i = self.alive[i].shape[0]
        if cols.size == 0:
            return np.zeros((n_i, self.k), dtype=np.float64)
        neighbor_vectors = self.vectors[j][cols]
        dead = ~self.alive[j][cols]
        if dead.any():
            neighbor_vectors[dead] = 0.0
        # Pad one zero row so every indptr start is a valid reduceat
        # index (trailing empty rows point one past the end); rows with
        # empty neighborhoods are zeroed explicitly afterwards.
        padded = np.vstack(
            (neighbor_vectors, np.zeros((1, self.k), dtype=np.float64))
        )
        segmax = np.maximum.reduceat(padded, indptr[:-1], axis=0)
        empty = indptr[:-1] == indptr[1:]
        if empty.any():
            segmax[empty] = 0.0
        return segmax

    def _upperbound_rounds(
        self, stats: ReductionStats, use_structure: bool, max_rounds: int
    ) -> None:
        eps = _CONVERGENCE_EPSILON
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            new_vectors: list = []
            deletions: list = []
            changes: list = []
            # Jacobi: every partition computed from the pre-round state.
            for i in range(self.k):
                old = self.vectors[i]
                alive_i = self.alive[i]
                required = self.decomposition.joins_with.get(i, frozenset())
                if required and alive_i.any():
                    best = None
                    for j in sorted(required):
                        segmax = self._segment_max(i, j)
                        best = (
                            segmax if best is None
                            else np.minimum(best, segmax)
                        )
                    new = np.minimum(old, best)
                    new[:, i] = old[:, i]  # the own entry stays fixed
                else:
                    new = old.copy()
                # Row-product threshold test, multiplying in the
                # reference backend's column order.
                bound = self.w2[i].copy()
                for p in range(self.k):
                    bound *= new[:, p]
                deleted = alive_i & (bound < self.alpha)
                changed_rows = (
                    alive_i & ~deleted & ((old - new) > eps).any(axis=1)
                )
                stats.message_updates += int(alive_i.sum())
                new_vectors.append(new)
                deletions.append(deleted)
                changes.append(changed_rows)
            any_deleted = False
            any_changed = False
            for i in range(self.k):
                deleted = deletions[i]
                keep = self.alive[i] & ~deleted
                self.vectors[i] = np.where(
                    keep[:, None], new_vectors[i], self.vectors[i]
                )
                if deleted.any():
                    self.alive[i][deleted] = False
                    stats.upperbound_removed += int(deleted.sum())
                    any_deleted = True
                if changes[i].any():
                    any_changed = True
            if not any_deleted and not any_changed:
                break
            # Structure eligibility depends only on alive masks and
            # links; a change-only round cannot create new structure
            # deletions, so the fixpoint sweep runs only after actual
            # deletions (the Python backend runs it then too — and it
            # removes nothing, keeping the counters identical).
            if use_structure and any_deleted:
                stats.structure_removed += self._structure_fixpoint()
        stats.rounds += rounds
