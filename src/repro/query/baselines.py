"""Baseline matchers (Section 6.2.1 and test oracles).

* :func:`exhaustive_matches` — the literal Definition 4/5 semantics:
  enumerate every possible world, run subgraph matching in each, and sum
  world probabilities per match. Exponential; the ground-truth oracle
  for small PEGs.
* :func:`direct_matches` — backtracking subgraph matching directly on
  ``G_U`` with exact probability pruning but no index, no decomposition
  and no reduction. Polynomially enumerable per candidate; the
  "no-index" baseline and the mid-size oracle.

Both return the same deduplicated, sorted ``Match`` lists as the
optimized engine, so results are directly comparable.
"""

from __future__ import annotations

from repro.peg.entity_graph import Match, ProbabilisticEntityGraph
from repro.peg.possible_worlds import enumerate_worlds
from repro.query.query_graph import QueryGraph


def exhaustive_matches(
    peg: ProbabilisticEntityGraph,
    query: QueryGraph,
    alpha: float,
    world_limit: int = 2_000_000,
) -> list:
    """All probabilistic matches via possible-world enumeration."""
    accumulated: dict = {}
    representative: dict = {}
    for world in enumerate_worlds(peg, limit=world_limit):
        label_of = world.label_of
        adjacency: dict = {entity: set() for entity in label_of}
        for pair in world.edges:
            entity_a, entity_b = tuple(pair)
            adjacency[entity_a].add(entity_b)
            adjacency[entity_b].add(entity_a)
        keys_in_world = set()
        for mapping in _embeddings(query, label_of, adjacency):
            key, nodes_key, edges = _canonical(query, mapping)
            if key in keys_in_world:
                continue  # several embeddings, one match, one world
            keys_in_world.add(key)
            accumulated[key] = accumulated.get(key, 0.0) + world.probability
            if key not in representative:
                representative[key] = (nodes_key, edges, mapping)
    matches = []
    for key, probability in accumulated.items():
        if probability < alpha:
            continue
        nodes_key, edges, mapping = representative[key]
        matches.append(
            Match(
                nodes=nodes_key,
                edges=edges,
                mapping=tuple(
                    sorted(mapping.items(), key=lambda kv: repr(kv[0]))
                ),
                probability=probability,
            )
        )
    return sorted(matches, key=lambda m: (-m.probability, repr(m.nodes)))


def _embeddings(query: QueryGraph, label_of: dict, adjacency: dict):
    """Backtracking embeddings of the query into one certain world."""
    order = _connected_order(query)
    entities = list(label_of)

    def extend(step: int, mapping: dict):
        if step == len(order):
            yield dict(mapping)
            return
        query_node = order[step]
        label = query.label(query_node)
        anchored = [
            n for n in query.neighbors(query_node) if n in mapping
        ]
        if anchored:
            candidates = set(adjacency[mapping[anchored[0]]])
            for other in anchored[1:]:
                candidates &= adjacency[mapping[other]]
        else:
            candidates = entities
        used = set(mapping.values())
        for entity in candidates:
            if entity in used or label_of[entity] != label:
                continue
            ok = all(
                (mapping[nbr] in adjacency[entity])
                for nbr in query.neighbors(query_node)
                if nbr in mapping
            )
            if not ok:
                continue
            mapping[query_node] = entity
            yield from extend(step + 1, mapping)
            del mapping[query_node]

    yield from extend(0, {})


def direct_matches(
    peg: ProbabilisticEntityGraph, query: QueryGraph, alpha: float
) -> list:
    """Backtracking matching on ``G_U`` with exact probability pruning.

    Sound and complete: partial match probabilities only shrink as nodes
    are added (all label/edge factors are <= 1 and ``Prn`` marginals are
    monotone), so pruning at α never loses a qualifying match.
    """
    order = _connected_order(query)
    matches: dict = {}

    def partial_probability(mapping: dict) -> float:
        node_labels = {
            peg.entity_of(peg_node): query.label(query_node)
            for query_node, peg_node in mapping.items()
        }
        edges = set()
        for edge in query.edges:
            node_a, node_b = tuple(edge)
            if node_a in mapping and node_b in mapping:
                edges.add(
                    frozenset(
                        (
                            peg.entity_of(mapping[node_a]),
                            peg.entity_of(mapping[node_b]),
                        )
                    )
                )
        return peg.match_probability(node_labels, edges)

    def extend(step: int, mapping: dict) -> None:
        if step == len(order):
            _record(mapping)
            return
        query_node = order[step]
        label = query.label(query_node)
        anchored = [n for n in query.neighbors(query_node) if n in mapping]
        if anchored:
            candidates = set(peg.neighbor_ids(mapping[anchored[0]]))
            for other in anchored[1:]:
                candidates &= set(peg.neighbor_ids(mapping[other]))
            candidates = sorted(candidates)
        else:
            candidates = peg.node_ids()
        used = set(mapping.values())
        for peg_node in candidates:
            if peg_node in used:
                continue
            if peg.label_probability_id(peg_node, label) <= 0.0:
                continue
            if any(
                peg.shares_references_id(peg_node, existing)
                for existing in mapping.values()
            ):
                continue
            mapping[query_node] = peg_node
            if partial_probability(mapping) >= alpha:
                extend(step + 1, mapping)
            del mapping[query_node]

    def _record(mapping: dict) -> None:
        entity_mapping = {
            query_node: peg.entity_of(peg_node)
            for query_node, peg_node in mapping.items()
        }
        key, nodes_key, edges = _canonical(query, entity_mapping)
        if key in matches:
            return
        probability = peg.match_probability(dict(nodes_key), edges)
        if probability < alpha:
            return
        matches[key] = Match(
            nodes=nodes_key,
            edges=edges,
            mapping=tuple(
                sorted(entity_mapping.items(), key=lambda kv: repr(kv[0]))
            ),
            probability=probability,
        )

    extend(0, {})
    return sorted(
        matches.values(), key=lambda m: (-m.probability, repr(m.nodes))
    )


def _connected_order(query: QueryGraph) -> list:
    """Query-node order where each node (when possible) follows a neighbor."""
    order: list = []
    placed: set = set()
    for start in query.nodes:
        if start in placed:
            continue
        stack = [start]
        while stack:
            node = stack.pop()
            if node in placed:
                continue
            order.append(node)
            placed.add(node)
            stack.extend(
                sorted(
                    (n for n in query.neighbors(node) if n not in placed),
                    key=repr,
                    reverse=True,
                )
            )
    return order


def _canonical(query: QueryGraph, mapping: dict) -> tuple:
    """Canonical labeled-subgraph key of an embedding."""
    node_labels = {
        entity: query.label(query_node)
        for query_node, entity in mapping.items()
    }
    nodes_key = tuple(sorted(node_labels.items(), key=lambda kv: repr(kv[0])))
    edges = frozenset(
        frozenset((mapping[node_a], mapping[node_b]))
        for node_a, node_b in (tuple(edge) for edge in query.edges)
    )
    return (nodes_key, edges), nodes_key, edges
