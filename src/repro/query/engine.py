"""The query engine: offline phase + online phase orchestration.

:class:`QueryEngine` performs the offline phase at construction time
(component probabilities are already embedded in the PEG; the engine
builds the context-aware path index — monolithic or hash-sharded — and
the context tables) and answers probabilistic subgraph pattern matching
queries online, producing both the matches and detailed statistics
(timings, search-space progression) that the benchmark harness
consumes. :meth:`QueryEngine.query_batch` evaluates many queries
together, fetching each shared candidate label sequence from the index
once per batch.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from repro.index.batch import BatchLookupIndex
from repro.index.builder import build_path_index
from repro.index.context import ContextInformation, build_context
from repro.index.protocol import (
    PathIndexProtocol,
    canonical_sequence,
    store_read_totals,
)
from repro.index.sharded import ShardedPathIndex, build_sharded_path_index
from repro.obs.metrics import get_registry
from repro.obs.timing import StageTimings
from repro.obs.trace import NULL_SPAN, Span, current_span
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.candidates import CandidateFinder
from repro.query.kpartite import CandidateKPartiteGraph, build_candidate_links
from repro.query.links import LinkStructureCache, build_candidate_links_vectorized
from repro.query.plan import QueryPlanner
from repro.query.matcher import generate_matches
from repro.query.query_graph import QueryGraph
from repro.storage.kvstore import PathStore
from repro.utils.errors import IndexError_, QueryError

_REGISTRY = get_registry()
_QUERIES_TOTAL = _REGISTRY.counter("repro_queries_total")
_MATCHES_TOTAL = _REGISTRY.counter("repro_query_matches_total")
_QUERY_SECONDS = _REGISTRY.histogram("repro_query_seconds")
#: One latency series per online-phase stage (StageTimings keys).
_STAGE_SECONDS = {
    stage: _REGISTRY.histogram("repro_query_stage_seconds", stage=stage)
    for stage in ("decompose", "candidates", "link_build", "kpartite",
                  "reduction", "matching")
}
_STORE_READS = _REGISTRY.counter("repro_store_reads_total")
_STORE_BYTES = _REGISTRY.counter("repro_store_bytes_read_total")
#: ``|log2(observed / corrected-estimate)|`` per partition lookup — the
#: planner's estimator error in doublings; p95 near 0 means the
#: feedback loop is holding the cost model honest.
_ESTIMATE_ERROR = _REGISTRY.histogram(
    "repro_estimate_abs_log2_error", low=0.01, high=16.0
)


def _record_query_metrics(timings: StageTimings, num_matches: int) -> None:
    """Fold one evaluation into the process-wide registry."""
    _QUERIES_TOTAL.inc()
    _MATCHES_TOTAL.inc(num_matches)
    _QUERY_SECONDS.observe(timings.total)
    for stage, seconds in timings.stages.items():
        histogram = _STAGE_SECONDS.get(stage)
        if histogram is not None:
            histogram.observe(seconds)


@dataclass(frozen=True)
class QueryOptions:
    """Knobs for the online phase (all paper baselines are expressible).

    ``decomposition="random"`` gives the Random-decomposition baseline;
    ``use_structure_reduction=use_upperbound_reduction=False`` gives the
    No-search-space-reduction baseline; ``use_context_pruning=False``
    ablates Section 5.2.2's context tests.

    ``reduction_backend`` selects the joint search-space reduction
    implementation: ``"vectorized"`` (the default) runs the whole-array
    numpy backend of :mod:`repro.query.reduction` — flat ``w1``/``w2``/
    alive arrays, CSR links, segment-max Jacobi rounds; ``"python"``
    runs the incremental pure-Python reference of
    :mod:`repro.query.kpartite`. Both produce identical matches,
    partition sizes and removal counts; ``parallel_reduction`` and
    ``num_threads`` only affect the Python backend.

    ``decomposition`` accepts ``"greedy"``, ``"exact"`` (optimal for
    small queries, greedy fallback past the cutoffs) and ``"random"``.
    ``use_plan_cache`` / ``use_estimator_feedback`` gate the adaptive
    planner (:mod:`repro.query.plan`): plan reuse for repeated query
    shapes and observed-cardinality corrections of the histogram
    estimates. Neither changes the matches — only which decomposition
    is chosen, hence the evaluation cost.

    ``link_backend`` selects the candidate-link construction:
    ``"vectorized"`` (the default) builds per-partition-pair CSR link
    arrays with bulk predicate joins and an elementwise
    joined-probability filter (:mod:`repro.query.links`);
    ``"python"`` runs the per-vertex reference
    (:func:`repro.query.kpartite.build_candidate_links`). Both emit
    identical link sets (the differential harness asserts it), so the
    knob composes freely with ``reduction_backend``. ``use_link_cache``
    gates the engine's :class:`~repro.query.links.LinkStructureCache`
    in front of the vectorized builder; the Python reference never
    consults the cache.

    ``trace`` records a span tree of the evaluation
    (:mod:`repro.obs.trace`) and attaches it as ``QueryResult.trace``.
    Like the backend knobs it never changes the matches, so the serving
    layer's request keys exclude it.
    """

    decomposition: str = "greedy"
    use_context_pruning: bool = True
    use_structure_reduction: bool = True
    use_upperbound_reduction: bool = True
    parallel_reduction: bool = False
    num_threads: int = 4
    seed: int | None = None
    reduction_backend: str = "vectorized"
    link_backend: str = "vectorized"
    use_link_cache: bool = True
    use_plan_cache: bool = True
    use_estimator_feedback: bool = True
    trace: bool = False


@dataclass
class QueryResult:
    """Matches plus per-stage statistics of one query evaluation."""

    matches: list
    search_space_path: float = 0.0
    search_space_context: float = 0.0
    search_space_final: float = 0.0
    candidate_counts: dict = field(default_factory=dict)
    reduction: object = None
    timings: dict = field(default_factory=dict)
    decomposition_paths: tuple = ()
    #: :class:`~repro.query.plan.PlanInfo` provenance of the chosen
    #: decomposition (None for legacy constructions).
    plan: object = None
    #: ``{partition: (corrected cardinality estimate, observed raw
    #: count)}`` — the estimation loop's evidence for this evaluation.
    estimate_observations: dict = field(default_factory=dict)
    #: Span-tree provenance of the evaluation (dict form of
    #: :meth:`repro.obs.trace.Span.to_dict`); populated only when
    #: ``QueryOptions.trace`` was set.
    trace: dict | None = None
    #: Link-build statistics: backend, kept pair count, link-cache
    #: hits/misses and scalar fallback count (empty for evaluations
    #: that never reached the link stage).
    link_stats: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total online-phase wall-clock seconds across all stages."""
        return sum(self.timings.values())


class QueryEngine:
    """Answers probabilistic subgraph pattern matching queries on a PEG.

    Parameters
    ----------
    peg:
        The probabilistic entity graph (already carries precomputed
        component probabilities).
    max_length:
        Index maximum path length ``L``.
    beta / gamma:
        Index threshold and resolution.
    store:
        Optional :class:`~repro.storage.kvstore.PathStore` for the index
        (defaults to in-memory; mutually exclusive with ``num_shards``).
    index_threads:
        Worker threads for monolithic index construction.
    num_shards:
        When >= 1, build a
        :class:`~repro.index.sharded.ShardedPathIndex` with this many
        hash shards instead of the monolithic index; 0 (the default)
        keeps the paper's single-store shape.
    shard_directory:
        Base directory for the shard stores (in-memory shards when
        omitted); required when ``build_processes > 1``.
    build_processes:
        Process-pool workers for the parallel sharded build (see
        :class:`~repro.index.sharded.ShardedIndexBuilder`).
    """

    def __init__(
        self,
        peg: ProbabilisticEntityGraph,
        max_length: int = 3,
        beta: float = 0.1,
        gamma: float = 0.1,
        store: PathStore | None = None,
        index_threads: int = 1,
        num_shards: int = 0,
        shard_directory: str | None = None,
        build_processes: int = 0,
        _precomputed: tuple | None = None,
    ) -> None:
        self.peg = peg
        self.offline_timings = StageTimings()
        # Lazily-built per-PEG probability tables shared by every
        # vectorized reduction this engine runs.
        self._peg_arrays = None
        #: Monotone counter bumped by every applied mutation batch
        #: (:meth:`apply_updates`); the serving layer mixes it into
        #: request keys so caches invalidate across updates.
        self.graph_version = 0
        #: High-water mark of applied :class:`repro.delta.log.MutationLog`
        #: sequence numbers — what makes log replay idempotent.
        self.applied_mutation_seq = -1
        #: Per-engine link-structure cache (keyed by partition-pair
        #: signature × candidate fingerprints × milli-alpha ×
        #: ``graph_version``); cleared on mutation absorption and
        #: compaction, re-keyed versionlessly by ``graph_version``.
        self.link_cache = LinkStructureCache()
        if _precomputed is not None:
            self.index, self.context = _precomputed
            self.planner = QueryPlanner(self)
            return
        if num_shards:
            if store is not None:
                raise IndexError_(
                    "store and num_shards are mutually exclusive: a sharded "
                    "index manages one store per shard"
                )
            with self.offline_timings.time("path_index"):
                self.index: PathIndexProtocol = build_sharded_path_index(
                    peg,
                    num_shards,
                    max_length=max_length,
                    beta=beta,
                    gamma=gamma,
                    directory=shard_directory,
                    num_processes=build_processes,
                )
        else:
            with self.offline_timings.time("path_index"):
                self.index = build_path_index(
                    peg,
                    max_length=max_length,
                    beta=beta,
                    gamma=gamma,
                    store=store,
                    num_threads=index_threads,
                )
        with self.offline_timings.time("context"):
            self.context: ContextInformation = build_context(peg)
        #: The adaptive planning subsystem: plan cache (keyed by
        #: canonical query form × milli-alpha × graph_version) and the
        #: estimator-feedback table (:mod:`repro.query.plan`).
        self.planner = QueryPlanner(self)

    # ------------------------------------------------------------------
    # Offline-bundle persistence
    # ------------------------------------------------------------------

    def save_offline(self, directory: str) -> None:
        """Persist this engine's offline artifacts (index + context)."""
        from repro.delta import DeltaOverlayIndex
        from repro.index.bundle import save_offline

        if isinstance(self.index, DeltaOverlayIndex):
            raise IndexError_(
                "engine has uncompacted live updates; call "
                "compact_updates() before save_offline()"
            )
        save_offline(self.index, self.context, directory)

    @classmethod
    def from_saved(
        cls, peg: ProbabilisticEntityGraph, directory: str
    ) -> "QueryEngine":
        """Open an engine from a bundle written by :meth:`save_offline`.

        The PEG must be the same graph the bundle was built from (node
        ids are positional); loading a bundle against a different PEG
        yields undefined results.
        """
        from repro.index.bundle import load_offline

        index, context = load_offline(directory)
        return cls(peg, _precomputed=(index, context))

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------

    def apply_updates(self, ops, log=None) -> dict:
        """Absorb a batch of PEG mutations without an offline rebuild.

        Thin façade over :func:`repro.delta.apply_mutations`: applies
        the ops to the PEG, wraps the index in a
        :class:`~repro.delta.overlay.DeltaOverlayIndex` (first time),
        refreshes the delta for the dirtied nodes, rebuilds the context
        tables, invalidates the cached probability arrays and bumps
        :attr:`graph_version`. Not safe to call concurrently with
        queries on this engine — the serving layer
        (:meth:`repro.service.QueryService.apply_updates`) provides the
        drained-quiescence discipline.
        """
        from repro.delta import apply_mutations

        return apply_mutations(self, ops, log=log)

    def compact_updates(self) -> dict:
        """Fold the delta overlay back into the base index stores.

        After compaction the engine's index is the (updated) base index
        again — e.g. ready for :meth:`save_offline`. No-op for an
        engine that never absorbed updates.
        """
        from repro.delta import DeltaOverlayIndex

        if not isinstance(self.index, DeltaOverlayIndex):
            return {
                "sequences_rewritten": 0,
                "paths_dropped": 0,
                "paths_added": 0,
            }
        overlay = self.index
        stats = overlay.compact()
        self.index = overlay.base
        # Compaction trues the histograms up: learned corrections and
        # plans costed against the drifted estimates restart from exact.
        self.planner.invalidate()
        # Compaction does not bump graph_version, so versioned link-
        # cache keys would stay live; drop them explicitly (the overlay
        # invalidation listener does the same — this covers overlays
        # constructed outside repro.delta.apply_mutations).
        self.link_cache.clear()
        return stats

    def invalidate_links(self) -> None:
        """Drop every cached link structure.

        Registered as a :class:`~repro.delta.overlay.DeltaOverlayIndex`
        invalidation listener, so mutation absorption and compaction
        clear the cache even though ``graph_version`` already re-keys
        absorbed batches.
        """
        self.link_cache.clear()

    # ------------------------------------------------------------------

    @property
    def max_length(self) -> int:
        """The index's maximum path length L."""
        return self.index.max_length

    def offline_stats(self) -> dict:
        """Offline-phase statistics: timings plus index size/shape."""
        stats = dict(self.index.stats())
        stats["offline_seconds"] = self.offline_timings.total
        stats["offline_timings"] = self.offline_timings.as_dict()
        return stats

    # ------------------------------------------------------------------

    def query(
        self,
        query: QueryGraph,
        alpha: float,
        options: QueryOptions | None = None,
    ) -> QueryResult:
        """Find all matches of ``query`` with probability >= ``alpha``."""
        if not 0.0 < alpha <= 1.0:
            raise QueryError(f"alpha must be in (0, 1], got {alpha}")
        options = options or QueryOptions()
        timings = StageTimings()
        span = self._query_span("query", options)

        with span:
            if span.enabled:
                span.set("alpha", alpha)
                span.set("graph_version", self.graph_version)
            # 1. Path decomposition (plan cache consulted first).
            with timings.time("decompose"), span.child("plan") as plan_span:
                decomposition, plan_info = self._decompose(
                    query, alpha, options
                )
                if plan_span.enabled:
                    plan_span.set("strategy", plan_info.strategy)
                    plan_span.set("source", plan_info.source)
                    plan_span.set("partitions", len(decomposition.paths))
                    plan_span.set(
                        "estimated_cost", round(plan_info.estimated_cost, 3)
                    )

            result = self._evaluate(
                query, alpha, options, self.index, decomposition, plan_info,
                timings, span=span,
            )
        if options.trace and span.enabled:
            result.trace = span.to_dict()
        return result

    def _query_span(self, name: str, options: QueryOptions):
        """Root (or ambient child) span of one evaluation.

        A real span is created when an outer span is active — the
        service's request span, a top-k probe — or when the caller
        asked for a trace; otherwise the null span keeps the
        instrumented path effectively free.
        """
        parent = current_span()
        if parent.enabled:
            return parent.child(name)
        if options.trace:
            return Span(name)
        return NULL_SPAN

    def query_batch(
        self,
        requests,
        options: QueryOptions | None = None,
    ) -> list:
        """Evaluate a batch of ``(query, alpha)`` requests together.

        Queries in a batch frequently share candidate label sequences
        (the same decomposition path shapes recur across a workload);
        evaluating them through one
        :class:`~repro.index.batch.BatchLookupIndex` fetches every
        distinct canonical sequence from the (possibly sharded) store
        once per batch — prefetches are grouped by shard and issued at
        the batch-wide minimum threshold per sequence — instead of once
        per query. Results are returned in request order and are
        identical to evaluating each request through :meth:`query`.
        """
        requests = [(query, float(alpha)) for query, alpha in requests]
        options = options or QueryOptions()
        batch_span = self._query_span("query_batch", options)
        results = []
        with batch_span:
            if batch_span.enabled:
                batch_span.set("requests", len(requests))
            plans = []
            for query, alpha in requests:
                if not 0.0 < alpha <= 1.0:
                    raise QueryError(f"alpha must be in (0, 1], got {alpha}")
                timings = StageTimings()
                with timings.time("decompose"), \
                        batch_span.child("plan") as plan_span:
                    decomposition, plan_info = self._decompose(
                        query, alpha, options
                    )
                    if plan_span.enabled:
                        plan_span.set("source", plan_info.source)
                plans.append(
                    (query, alpha, decomposition, plan_info, timings)
                )

            batch_index = BatchLookupIndex(self.index)
            with batch_span.child("prefetch") as prefetch_span:
                shared = self._shared_lookups(plans)
                for canonical, alpha in shared:
                    batch_index.prefetch(canonical, alpha)
                if prefetch_span.enabled:
                    prefetch_span.set("sequences", len(shared))

            for query, alpha, decomposition, plan_info, timings in plans:
                with batch_span.child("query") as query_span:
                    if query_span.enabled:
                        query_span.set("alpha", alpha)
                    result = self._evaluate(
                        query, alpha, options, batch_index, decomposition,
                        plan_info, timings, span=query_span,
                    )
                if options.trace and query_span.enabled:
                    result.trace = query_span.to_dict()
                results.append(result)
        return results

    def _shared_lookups(self, plans) -> list:
        """Distinct canonical sequences a batch needs, with the minimum
        alpha per sequence, ordered by owning shard for locality."""
        needed: dict = {}
        for query, alpha, decomposition, _plan_info, _ in plans:
            if alpha < self.index.beta:
                # Below-beta thresholds bypass the index entirely
                # (on-demand enumeration); nothing to prefetch.
                continue
            for path in decomposition.paths:
                canonical = canonical_sequence(
                    query.label_sequence(path.nodes)
                )
                previous = needed.get(canonical)
                if previous is None or alpha < previous:
                    needed[canonical] = alpha
        if isinstance(self.index, ShardedPathIndex):
            def order(item):
                return (self.index.shard_for(item[0]), repr(item[0]))
        else:
            def order(item):
                return repr(item[0])
        return sorted(needed.items(), key=order)

    def _peg_probability_arrays(self):
        """The engine's shared per-PEG probability gather tables.

        They depend only on the PEG; one instance amortizes them across
        every vectorized link build and reduction of this engine
        (invalidated alongside ``graph_version`` on mutations).
        """
        from repro.query.reduction import PegProbabilityArrays

        if self._peg_arrays is None:
            self._peg_arrays = PegProbabilityArrays(self.peg)
        return self._peg_arrays

    def _build_links(self, decomposition, candidates, alpha, options):
        """Candidate links via the selected builder; ``(links, stats)``."""
        backend = options.link_backend
        if backend == "vectorized":
            link_set = build_candidate_links_vectorized(
                self.peg,
                decomposition,
                candidates,
                alpha,
                arrays=self._peg_probability_arrays(),
                cache=self.link_cache if options.use_link_cache else None,
                graph_version=self.graph_version,
            )
            return link_set, link_set.stats
        if backend == "python":
            links = build_candidate_links(
                self.peg, decomposition, candidates, alpha
            )
            stats = {
                "backend": "python",
                "pairs": sum(len(pairs) for pairs in links.values()),
                "cache_hits": 0,
                "cache_misses": 0,
                "fallback_pairs": 0,
            }
            return links, stats
        raise QueryError(
            f"unknown link backend {backend!r}; "
            "expected 'vectorized' or 'python'"
        )

    def _make_kpartite(self, decomposition, candidates, alpha, options, links):
        """Instantiate the selected reduction backend over one candidate set."""
        backend = options.reduction_backend
        if backend == "vectorized":
            from repro.query.reduction import VectorizedKPartiteGraph

            return VectorizedKPartiteGraph(
                self.peg,
                decomposition,
                candidates,
                alpha,
                links=links,
                arrays=self._peg_probability_arrays(),
            )
        if backend == "python":
            return CandidateKPartiteGraph(
                self.peg,
                decomposition,
                candidates,
                alpha,
                parallel=options.parallel_reduction,
                num_threads=options.num_threads,
                links=links,
            )
        raise QueryError(
            f"unknown reduction backend {backend!r}; "
            "expected 'vectorized' or 'python'"
        )

    def _decompose(self, query: QueryGraph, alpha: float, options):
        """Plan through the adaptive planner; ``(decomposition, PlanInfo)``."""
        return self.planner.plan(query, alpha, options)

    def _evaluate(
        self,
        query: QueryGraph,
        alpha: float,
        options: QueryOptions,
        index: PathIndexProtocol,
        decomposition,
        plan_info,
        timings: StageTimings,
        span=NULL_SPAN,
    ) -> QueryResult:
        """Online phase stages 2-5 over an already-chosen decomposition.

        ``span`` is an already-entered parent span (or the null span);
        stage spans — lookup, link_build, kpartite, reduce, match — are
        created under it. Callers own the root span's lifecycle and
        export.
        """
        # 2. Path candidates (index lookup + context pruning).
        finder = CandidateFinder(
            self.peg,
            query,
            alpha,
            index=index,
            context=self.context,
            use_context=options.use_context_pruning,
        )
        candidates: dict = {}
        raw_counts: dict = {}
        # Store-traffic deltas around the lookup stage. The store
        # counters are process-cumulative, so under concurrent queries a
        # delta may attribute a neighbor's reads to this span — totals
        # stay exact, attribution is best-effort.
        reads_before, bytes_before = store_read_totals(index)
        with timings.time("candidates"), span.child("lookup") as lookup_span:
            for i, path in enumerate(decomposition.paths):
                with lookup_span.child("partition", index=i) as path_span:
                    pruned, raw = finder.find(path)
                    if path_span.enabled:
                        path_span.set("labels", "-".join(
                            map(str, query.label_sequence(path.nodes))
                        ))
                        path_span.set("raw", raw)
                        path_span.set("pruned", len(pruned))
                candidates[i] = pruned
                raw_counts[i] = raw
            reads_after, bytes_after = store_read_totals(index)
            store_reads = reads_after - reads_before
            store_bytes = bytes_after - bytes_before
            _STORE_READS.inc(store_reads)
            _STORE_BYTES.inc(store_bytes)
            if lookup_span.enabled:
                lookup_span.incr("store_reads", store_reads)
                lookup_span.incr("store_bytes_read", store_bytes)

        # Close the estimation loop: observed raw lookup cardinalities
        # correct future histogram estimates (post-delta drift heals
        # without a rebuild).
        if options.use_estimator_feedback:
            observations = self.planner.observe(
                query, decomposition, alpha, raw_counts
            )
        else:
            observations = {}
        if observations:
            error_sum = 0.0
            for corrected, observed in observations.values():
                error = abs(math.log2(
                    (observed + 1.0) / (max(corrected, 0.0) + 1.0)
                ))
                _ESTIMATE_ERROR.observe(error)
                error_sum += error
            if span.enabled:
                span.set(
                    "estimate_abs_log2_err",
                    round(error_sum / len(observations), 4),
                )

        search_space_path = _product(raw_counts.values())
        search_space_context = _product(len(c) for c in candidates.values())

        if any(not c for c in candidates.values()):
            if span.enabled:
                span.set("matches", 0)
                span.set("empty_partition", True)
            _record_query_metrics(timings, 0)
            return QueryResult(
                matches=[],
                search_space_path=search_space_path,
                search_space_context=search_space_context,
                search_space_final=0.0,
                candidate_counts={i: len(c) for i, c in candidates.items()},
                timings=timings.as_dict(),
                decomposition_paths=tuple(
                    p.nodes for p in decomposition.paths
                ),
                plan=plan_info,
                estimate_observations=observations,
            )

        # 3. Candidate-link construction (cache-aware, its own stage:
        # the 30k-vertex bench showed it dominating the reduce it feeds).
        with timings.time("link_build"), span.child("link_build") as link_span:
            links, link_stats = self._build_links(
                decomposition, candidates, alpha, options
            )
            if link_span.enabled:
                link_span.set("backend", link_stats["backend"])
                link_span.set("pairs", link_stats["pairs"])
                link_span.incr("cache_hits", link_stats["cache_hits"])
                link_span.incr("cache_misses", link_stats["cache_misses"])

        # 4. K-partite construction and joint search-space reduction.
        with timings.time("kpartite"), span.child("kpartite") as build_span:
            kpartite = self._make_kpartite(
                decomposition, candidates, alpha, options, links
            )
            if build_span.enabled:
                build_span.set("backend", options.reduction_backend)
                build_span.set("partitions", len(candidates))
        with timings.time("reduction"), span.child("reduce") as reduce_span:
            reduction = kpartite.reduce(
                use_structure=options.use_structure_reduction,
                use_upperbounds=options.use_upperbound_reduction,
            )
            if reduce_span.enabled:
                reduce_span.set("rounds", reduction.rounds)
                reduce_span.incr(
                    "structure_removed", reduction.structure_removed
                )
                reduce_span.incr(
                    "upperbound_removed", reduction.upperbound_removed
                )

        # 5. Full match generation.
        with timings.time("matching"), span.child("match") as match_span:
            matches = generate_matches(
                self.peg, decomposition, kpartite, alpha
            )
            if match_span.enabled:
                match_span.set("matches", len(matches))

        if span.enabled:
            span.set("matches", len(matches))
        _record_query_metrics(timings, len(matches))
        return QueryResult(
            matches=matches,
            search_space_path=search_space_path,
            search_space_context=search_space_context,
            search_space_final=reduction.final_search_space,
            candidate_counts={i: len(c) for i, c in candidates.items()},
            reduction=reduction,
            timings=timings.as_dict(),
            decomposition_paths=tuple(p.nodes for p in decomposition.paths),
            plan=plan_info,
            estimate_observations=observations,
            link_stats=link_stats,
        )


def _product(values) -> float:
    result = 1.0
    for value in values:
        result *= value
    return result
