"""Vectorized candidate-link construction with a versioned link cache.

:func:`repro.query.kpartite.build_candidate_links` — the pure-Python
reference — enumerates every (candidate, joinable candidate) pair
through per-vertex hash-table probes and one scalar
:func:`~repro.query.join_candidates.joined_probability` call per pair.
After PR 3 vectorized the reduction itself, that enumeration became the
online phase's dominant cost (~30x the reduce it feeds on the 30k-vertex
workload).

:func:`build_candidate_links_vectorized` replaces it with whole-array
passes per joining partition pair:

* **join-predicate matching** — the `JoinCandidateTables` key columns
  become sorted numpy id arrays; equal-key runs are found with
  ``np.argsort`` + ``np.searchsorted`` and expanded into all matching
  ``(vid, uid)`` pairs with one ``np.repeat``/arange pass, in the
  reference's (vid ascending, uid ascending) order,
* **joined-probability filter** — the same factors the scalar
  :func:`~repro.query.join_candidates.joined_probability` multiplies
  (labels in assignment order, edges in path-traversal order, existence
  marginals in assignment order) are gathered from the
  :class:`~repro.query.reduction.PegProbabilityArrays` tables and
  multiplied elementwise in the same per-element IEEE order, so the
  filter decisions — and the floats behind them — are bit-identical.
  Pairs whose assigned nodes share an identity component (where
  reference-sharing zeros and joint component marginals live) fall back
  to the scalar function; pairs violating injectivity are zeroed like
  the reference.

:class:`LinkStructureCache` sits in front of the builder, per engine:
entries are keyed by canonical partition-pair signature × candidate
content fingerprints × milli-alpha × ``graph_version`` and hold the
*unfiltered* positive-probability pair arrays, so a hit only replays
the ``probs >= alpha`` mask. ``apply_updates`` invalidates versionlessly
(the bumped ``graph_version`` re-keys every entry and stale ones age out
of the LRU) and both mutation absorption and compaction clear the cache
through :class:`~repro.delta.overlay.DeltaOverlayIndex` invalidation
listeners.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

from repro.index.builder import _milli
from repro.obs.metrics import get_registry
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.decompose import Decomposition
from repro.query.join_candidates import joined_probability
from repro.query.reduction import PegProbabilityArrays

_REGISTRY = get_registry()
_LINK_CACHE_HITS = _REGISTRY.counter("repro_link_cache_hits_total")
_LINK_CACHE_MISSES = _REGISTRY.counter("repro_link_cache_misses_total")
_LINK_PAIRS = _REGISTRY.counter("repro_link_pairs_total")
_LINK_FALLBACK_PAIRS = _REGISTRY.counter("repro_link_fallback_pairs_total")


class LinkSet:
    """Per-partition-pair link arrays, the vectorized builder's output.

    ``arrays`` maps each joining ``(i, j)`` with ``i < j`` to a
    ``(rows, cols)`` pair of int64 arrays — partition-``i`` and
    partition-``j`` vertex ids, row-major sorted (vid ascending, uid
    ascending), exactly the pairs the reference builder would emit.
    Both reduction backends accept a ``LinkSet`` wherever they accept
    the reference's ``{(i, j): [(vid, uid), ...]}`` dict;
    :meth:`pair_lists` converts to that dict form (tests compare the
    two builders through it).
    """

    def __init__(self, arrays: dict, stats: dict) -> None:
        self.arrays = arrays
        #: Build statistics: backend, kept ``pairs``, cache
        #: ``hits``/``misses`` (per partition pair), scalar
        #: ``fallback_pairs``.
        self.stats = stats

    def pair_lists(self) -> dict:
        """The reference builder's ``{(i, j): [(vid, uid), ...]}`` form."""
        return {
            pair: list(zip(rows.tolist(), cols.tolist()))
            for pair, (rows, cols) in self.arrays.items()
        }

    def get(self, pair, default=None):
        """Dict-style access used by the CSR construction."""
        return self.arrays.get(pair, default)

    def items(self):
        """Iterate ``((i, j), (rows, cols))`` like the dict form."""
        return self.arrays.items()

    def num_pairs(self) -> int:
        """Total links across all partition pairs."""
        return sum(int(rows.size) for rows, _ in self.arrays.values())


class LinkStructureCache:
    """Thread-safe LRU of link structures, keyed per partition pair.

    Values are ``(rows, cols, probs)`` for *every* predicate-matched
    pair with positive joined probability — pre-alpha-filter — so one
    entry serves any threshold over the same candidate id spaces; the
    fingerprints in the key pin those id spaces to exact candidate
    content. Entries are immutable (retrieval masks into fresh arrays),
    so concurrent readers share them safely.
    """

    def __init__(self, capacity: int = 32) -> None:
        # Imported lazily for the same reason QueryPlanner does:
        # repro.service imports the query engine, which imports this
        # module.
        from repro.service.cache import ResultCache

        self._cache = ResultCache(capacity)
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        """Maximum number of cached partition-pair structures."""
        return self._cache.capacity

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, key):
        """Cached ``(rows, cols, probs)`` for ``key``, or ``None``."""
        entry = self._cache.get(key)
        with self._lock:
            if entry is None:
                self.misses += 1
                _LINK_CACHE_MISSES.inc()
            else:
                self.hits += 1
                _LINK_CACHE_HITS.inc()
        return entry

    def put(self, key, value) -> None:
        """Insert one partition-pair structure."""
        self._cache.put(key, value)

    def clear(self) -> None:
        """Drop every cached structure (hit/miss counters persist)."""
        self._cache.clear()

    def stats_snapshot(self) -> dict:
        """Counters for the serving stats surface."""
        with self._lock:
            hits, misses = self.hits, self.misses
        return {
            "link_cache_size": len(self._cache),
            "link_cache_capacity": self._cache.capacity,
            "link_cache_hits": hits,
            "link_cache_misses": misses,
        }


def pair_signature(decomposition: Decomposition, i: int, j: int) -> tuple:
    """Canonical signature of one joining partition pair.

    Label sequences of both paths plus the join-predicate position
    pairs: what the link structure depends on besides the candidate
    contents (fingerprinted separately) and the PEG (versioned
    separately).
    """
    query = decomposition.query
    return (
        tuple(query.label(node) for node in decomposition.paths[i].nodes),
        tuple(query.label(node) for node in decomposition.paths[j].nodes),
        decomposition.predicates_between(i, j),
    )


def _fingerprint(matrix: np.ndarray) -> tuple:
    """Content fingerprint of one partition's candidate node matrix."""
    data = np.ascontiguousarray(matrix)
    return (matrix.shape, hashlib.sha1(data.tobytes()).hexdigest())


def _equi_join(key_i: np.ndarray, key_j: np.ndarray) -> tuple:
    """All ``(row, col)`` index pairs with equal key tuples.

    ``key_i``/``key_j`` are ``(n, m)`` int64 key-column matrices (one
    row per candidate, one column per join predicate). Pairs come out
    in (row ascending, col ascending) order — the reference builder's
    enumeration order.
    """
    n_i, n_j = key_i.shape[0], key_j.shape[0]
    empty = np.zeros(0, dtype=np.int64)
    if n_i == 0 or n_j == 0:
        return empty, empty.copy()
    if key_i.shape[1] == 1:
        gid_i = key_i[:, 0]
        gid_j = key_j[:, 0]
    else:
        stacked = np.concatenate([key_i, key_j], axis=0)
        _, inverse = np.unique(stacked, axis=0, return_inverse=True)
        inverse = np.asarray(inverse, dtype=np.int64).reshape(-1)
        gid_i = inverse[:n_i]
        gid_j = inverse[n_i:]
    order_j = np.argsort(gid_j, kind="stable")
    sorted_j = gid_j[order_j]
    starts = np.searchsorted(sorted_j, gid_i, side="left")
    ends = np.searchsorted(sorted_j, gid_i, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return empty, empty.copy()
    rows = np.repeat(np.arange(n_i, dtype=np.int64), counts)
    run_starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
    cols = order_j[np.repeat(starts, counts) + offsets]
    return rows, np.asarray(cols, dtype=np.int64)


def _assignment_spec(decomposition: Decomposition, i: int, j: int) -> list:
    """Deduplicated query-node assignment order of the joined pair.

    ``(side, position, query_node)`` triples in the scalar reference's
    ``assigned``-dict insertion order: path ``i`` first, then path
    ``j``, first occurrence per query node.
    """
    spec: list = []
    seen: set = set()
    for side, path in ((0, decomposition.paths[i]), (1, decomposition.paths[j])):
        for position, query_node in enumerate(path.nodes):
            if query_node in seen:
                continue
            seen.add(query_node)
            spec.append((side, position, query_node))
    return spec


def _pair_probabilities(
    peg: ProbabilisticEntityGraph,
    decomposition: Decomposition,
    candidates: dict,
    arrays: PegProbabilityArrays,
    nodes_i: np.ndarray,
    nodes_j: np.ndarray,
    i: int,
    j: int,
) -> tuple:
    """All predicate-matched pairs of ``(i, j)`` with positive probability.

    Returns ``(rows, cols, probs, fallback_count)``: vertex ids and the
    exact joined probability per surviving pair, plus how many pairs
    took the scalar fallback (shared identity components).
    """
    query = decomposition.query
    predicates = decomposition.predicates_between(i, j)
    key_i = nodes_i[:, [pos_i for pos_i, _ in predicates]]
    key_j = nodes_j[:, [pos_j for _, pos_j in predicates]]
    rows, cols = _equi_join(key_i, key_j)
    if rows.size == 0:
        return rows, cols, np.zeros(0, dtype=np.float64), 0

    spec = _assignment_spec(decomposition, i, j)
    assigned_ids = [
        nodes_i[rows, position] if side == 0 else nodes_j[cols, position]
        for side, position, _ in spec
    ]
    position_of = {query_node: idx for idx, (_, _, query_node) in enumerate(spec)}
    m = len(spec)

    # Injectivity: distinct query nodes need distinct entities.
    valid = np.ones(rows.shape, dtype=bool)
    for a in range(m):
        for b in range(a + 1, m):
            valid &= assigned_ids[a] != assigned_ids[b]

    # Pairs with two assigned nodes in one identity component are the
    # only place reference sharing or joint existence marginals can
    # appear; they take the scalar reference path below.
    components = arrays.component_indexes()
    shared_component = np.zeros(rows.shape, dtype=bool)
    for a in range(m):
        comp_a = components[assigned_ids[a]]
        for b in range(a + 1, m):
            shared_component |= comp_a == components[assigned_ids[b]]
    fallback = valid & shared_component

    # Elementwise joined probability in the scalar reference's factor
    # order: labels in assignment order, then path-traversal edges
    # (deduplicated by query edge), then existence gathers.
    probs = np.ones(rows.shape, dtype=np.float64)
    for idx, (_, _, query_node) in enumerate(spec):
        label_probs = arrays.label_probabilities(query.label(query_node))
        probs *= label_probs[assigned_ids[idx]]
    seen_edges: set = set()
    for path in (decomposition.paths[i], decomposition.paths[j]):
        for node_a, node_b in zip(path.nodes, path.nodes[1:]):
            edge = frozenset((node_a, node_b))
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            probs *= arrays.edge_probabilities(
                assigned_ids[position_of[node_a]],
                assigned_ids[position_of[node_b]],
                query.label(node_a),
                query.label(node_b),
            )
    existence = arrays.existence_probabilities()
    prn = np.ones(rows.shape, dtype=np.float64)
    for idx in range(m):
        prn *= existence[assigned_ids[idx]]
    probs *= prn
    probs[~valid] = 0.0

    fallback_count = int(fallback.sum())
    if fallback_count:
        cands_i, cands_j = candidates[i], candidates[j]
        for position in np.nonzero(fallback)[0].tolist():
            probs[position] = joined_probability(
                peg, decomposition, i, cands_i[rows[position]],
                j, cands_j[cols[position]],
            )
    keep = probs > 0.0
    return rows[keep], cols[keep], probs[keep], fallback_count


def build_candidate_links_vectorized(
    peg: ProbabilisticEntityGraph,
    decomposition: Decomposition,
    candidates: dict,
    alpha: float,
    arrays: PegProbabilityArrays | None = None,
    cache: LinkStructureCache | None = None,
    graph_version: int = 0,
) -> LinkSet:
    """Vectorized counterpart of ``build_candidate_links``.

    Produces the exact link sets of the pure-Python reference — same
    ``(i, j)`` keys, same pairs, same (vid ascending, uid ascending)
    order — as numpy arrays, via bulk predicate joins and an
    elementwise joined-probability filter over the shared
    :class:`~repro.query.reduction.PegProbabilityArrays` gather tables.

    ``cache`` (a :class:`LinkStructureCache`) short-circuits the build
    per partition pair; ``graph_version`` must then be the owning
    engine's current version so mutated PEGs never serve stale links.
    """
    alpha = float(alpha)
    if arrays is None:
        arrays = PegProbabilityArrays(peg)
    matrices: dict = {}
    fingerprints: dict = {}

    def matrix(index: int) -> np.ndarray:
        nodes = matrices.get(index)
        if nodes is None:
            cands = candidates[index]
            width = len(decomposition.paths[index].nodes)
            nodes = np.array(
                [candidate.nodes for candidate in cands], dtype=np.int64
            ).reshape(len(cands), width)
            matrices[index] = nodes
        return nodes

    def fingerprint(index: int) -> tuple:
        value = fingerprints.get(index)
        if value is None:
            value = _fingerprint(matrix(index))
            fingerprints[index] = value
        return value

    links: dict = {}
    stats = {
        "backend": "vectorized",
        "pairs": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "fallback_pairs": 0,
    }
    for i, joined in decomposition.joins_with.items():
        for j in joined:
            if j < i:
                continue  # links are symmetric; build once per pair
            key = None
            if cache is not None:
                key = (
                    pair_signature(decomposition, i, j),
                    fingerprint(i),
                    fingerprint(j),
                    _milli(alpha),
                    int(graph_version),
                )
                entry = cache.get(key)
                if entry is not None:
                    rows, cols, probs = entry
                    mask = probs >= alpha
                    links[(i, j)] = (rows[mask], cols[mask])
                    stats["cache_hits"] += 1
                    continue
                stats["cache_misses"] += 1
            rows, cols, probs, fallback = _pair_probabilities(
                peg, decomposition, candidates, arrays,
                matrix(i), matrix(j), i, j,
            )
            if cache is not None:
                cache.put(key, (rows, cols, probs))
            mask = probs >= alpha
            links[(i, j)] = (rows[mask], cols[mask])
            stats["fallback_pairs"] += fallback
    stats["pairs"] = sum(int(rows.size) for rows, _ in links.values())
    _LINK_PAIRS.inc(stats["pairs"])
    _LINK_FALLBACK_PAIRS.inc(stats["fallback_pairs"])
    return LinkSet(links, stats)
