"""Query graphs: labeled undirected patterns (Section 4).

A query graph ``Q = (V_Q, E_Q, l_Q)`` assigns exactly one label from the
alphabet to every node. Matches must map every query node to a distinct
entity whose label set contains the query label, with every query edge
present (Definition 3, generalized to multi-label entity nodes).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Tuple

from repro.utils.errors import QueryError


class QueryGraph:
    """Labeled undirected query pattern.

    Parameters
    ----------
    labels:
        ``{query node: label}`` — every node carries exactly one label.
    edges:
        Iterable of node pairs; undirected, no self loops, no duplicates.
    """

    def __init__(self, labels: Mapping, edges: Iterable[Tuple]) -> None:
        if not labels:
            raise QueryError("query graph needs at least one node")
        self._labels = dict(labels)
        self._edges: set = set()
        self._adjacency: dict = {node: set() for node in self._labels}
        for edge in edges:
            try:
                node_a, node_b = edge
            except (TypeError, ValueError):
                raise QueryError(f"edge {edge!r} is not a node pair") from None
            if node_a == node_b:
                raise QueryError(f"self-loop on query node {node_a!r}")
            for node in (node_a, node_b):
                if node not in self._labels:
                    raise QueryError(f"edge endpoint {node!r} is not a query node")
            key = frozenset((node_a, node_b))
            if key in self._edges:
                raise QueryError(
                    f"duplicate query edge between {node_a!r} and {node_b!r}"
                )
            self._edges.add(key)
            self._adjacency[node_a].add(node_b)
            self._adjacency[node_b].add(node_a)

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple:
        """Query nodes in insertion order."""
        return tuple(self._labels)

    @property
    def edges(self) -> frozenset:
        """Query edges as frozensets of node pairs."""
        return frozenset(self._edges)

    @property
    def num_nodes(self) -> int:
        """Number of query nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of query edges."""
        return len(self._edges)

    def label(self, node) -> object:
        """The label of a query node."""
        try:
            return self._labels[node]
        except KeyError:
            raise QueryError(f"unknown query node {node!r}") from None

    def neighbors(self, node) -> frozenset:
        """Adjacent query nodes."""
        try:
            return frozenset(self._adjacency[node])
        except KeyError:
            raise QueryError(f"unknown query node {node!r}") from None

    def degree(self, node) -> int:
        """Number of query neighbors of ``node``."""
        return len(self._adjacency[node])

    def has_edge(self, node_a, node_b) -> bool:
        """True when the query contains the undirected edge."""
        return frozenset((node_a, node_b)) in self._edges

    def label_sequence(self, nodes: Iterable) -> tuple:
        """Labels of a node sequence (e.g. of a decomposition path)."""
        return tuple(self._labels[node] for node in nodes)

    def neighbor_label_count(self, node, label) -> int:
        """``c(n, σ)``: neighbors of ``node`` labeled ``σ`` in the query."""
        return sum(
            1 for nbr in self._adjacency[node] if self._labels[nbr] == label
        )

    def connected_components(self) -> list:
        """Node sets of the query's connected components."""
        seen: set = set()
        components = []
        for start in self._labels:
            if start in seen:
                continue
            stack = [start]
            component = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adjacency[node] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    def density(self) -> float:
        """Edge density ``2|E| / (|V| (|V|-1))`` (1.0 for single nodes)."""
        n = self.num_nodes
        if n <= 1:
            return 1.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryGraph(nodes={self.num_nodes}, edges={self.num_edges})"
