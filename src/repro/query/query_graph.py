"""Query graphs: labeled undirected patterns (Section 4).

A query graph ``Q = (V_Q, E_Q, l_Q)`` assigns exactly one label from the
alphabet to every node. Matches must map every query node to a distinct
entity whose label set contains the query label, with every query edge
present (Definition 3, generalized to multi-label entity nodes).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Tuple

from repro.utils.errors import QueryError

#: Bound on canonical-labeling leaf orderings explored; only highly
#: symmetric queries (where the surviving orderings encode identically
#: anyway) ever come near it.
_CANONICAL_LEAF_CAP = 2000


class QueryGraph:
    """Labeled undirected query pattern.

    Parameters
    ----------
    labels:
        ``{query node: label}`` — every node carries exactly one label.
    edges:
        Iterable of node pairs; undirected, no self loops, no duplicates.
    """

    def __init__(self, labels: Mapping, edges: Iterable[Tuple]) -> None:
        if not labels:
            raise QueryError("query graph needs at least one node")
        self._labels = dict(labels)
        self._edges: set = set()
        self._adjacency: dict = {node: set() for node in self._labels}
        for edge in edges:
            try:
                node_a, node_b = edge
            except (TypeError, ValueError):
                raise QueryError(f"edge {edge!r} is not a node pair") from None
            if node_a == node_b:
                raise QueryError(f"self-loop on query node {node_a!r}")
            for node in (node_a, node_b):
                if node not in self._labels:
                    raise QueryError(f"edge endpoint {node!r} is not a query node")
            key = frozenset((node_a, node_b))
            if key in self._edges:
                raise QueryError(
                    f"duplicate query edge between {node_a!r} and {node_b!r}"
                )
            self._edges.add(key)
            self._adjacency[node_a].add(node_b)
            self._adjacency[node_b].add(node_a)
        self._canonical: tuple | None = None
        self._canonical_order: tuple | None = None

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple:
        """Query nodes in insertion order."""
        return tuple(self._labels)

    @property
    def edges(self) -> frozenset:
        """Query edges as frozensets of node pairs."""
        return frozenset(self._edges)

    @property
    def num_nodes(self) -> int:
        """Number of query nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of query edges."""
        return len(self._edges)

    def label(self, node) -> object:
        """The label of a query node."""
        try:
            return self._labels[node]
        except KeyError:
            raise QueryError(f"unknown query node {node!r}") from None

    def neighbors(self, node) -> frozenset:
        """Adjacent query nodes."""
        try:
            return frozenset(self._adjacency[node])
        except KeyError:
            raise QueryError(f"unknown query node {node!r}") from None

    def degree(self, node) -> int:
        """Number of query neighbors of ``node``."""
        return len(self._adjacency[node])

    def has_edge(self, node_a, node_b) -> bool:
        """True when the query contains the undirected edge."""
        return frozenset((node_a, node_b)) in self._edges

    def label_sequence(self, nodes: Iterable) -> tuple:
        """Labels of a node sequence (e.g. of a decomposition path)."""
        return tuple(self._labels[node] for node in nodes)

    def neighbor_label_count(self, node, label) -> int:
        """``c(n, σ)``: neighbors of ``node`` labeled ``σ`` in the query."""
        return sum(
            1 for nbr in self._adjacency[node] if self._labels[nbr] == label
        )

    def connected_components(self) -> list:
        """Node sets of the query's connected components."""
        seen: set = set()
        components = []
        for start in self._labels:
            if start in seen:
                continue
            stack = [start]
            component = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adjacency[node] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    def density(self) -> float:
        """Edge density ``2|E| / (|V| (|V|-1))`` (1.0 for single nodes)."""
        n = self.num_nodes
        if n <= 1:
            return 1.0
        return 2.0 * self.num_edges / (n * (n - 1))

    # ------------------------------------------------------------------
    # Canonicalization (label-preserving isomorphism)
    # ------------------------------------------------------------------

    def canonical_form(self) -> tuple:
        """A canonical encoding invariant under node-id renaming.

        Returns ``(labels, edges)`` where ``labels`` is the tuple of node
        label ``repr`` strings in canonical order and ``edges`` the sorted
        tuple of ``(i, j)`` position pairs. Two query graphs that differ
        only by a relabeling of their node ids (a label-preserving
        isomorphism) produce the same form; the result is cached.

        Labels are encoded through ``repr`` so heterogeneous label types
        stay comparable and hashable; distinct label objects sharing a
        ``repr`` are therefore conflated.
        """
        if self._canonical is None:
            order, edges = self._canonical_search()
            labels = tuple(repr(self._labels[node]) for node in order)
            self._canonical_order = order
            self._canonical = (labels, edges)
        return self._canonical

    def canonical_order(self) -> tuple:
        """This graph's nodes in canonical-form order.

        Position ``i`` of the order carries label ``canonical_form()[0][i]``
        and the edges are ``canonical_form()[1]`` in position space. Two
        isomorphic query graphs sharing a canonical form therefore map
        onto each other through their orders — position ``i`` in one
        corresponds to position ``i`` in the other — which is what lets
        :mod:`repro.query.plan` rehydrate a cached decomposition onto a
        renamed copy of the query it was planned for.
        """
        self.canonical_form()
        return self._canonical_order

    def signature(self) -> str:
        """Stable hex digest of :meth:`canonical_form`.

        Deterministic across processes (unlike ``hash()``), so it can key
        persistent or shared result caches.
        """
        blob = repr(self.canonical_form()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def _refine(self, colors: dict) -> dict:
        """1-WL color refinement to a stable partition (int colors)."""
        nodes = tuple(self._labels)
        num_colors = len(set(colors.values()))
        while True:
            sigs = {
                n: (colors[n],
                    tuple(sorted(colors[m] for m in self._adjacency[n])))
                for n in nodes
            }
            palette = {s: i for i, s in enumerate(sorted(set(sigs.values())))}
            colors = {n: palette[sigs[n]] for n in nodes}
            if len(palette) == num_colors:
                return colors
            num_colors = len(palette)

    def _canonical_search(self) -> tuple:
        """Canonical ``(node order, edge encoding)`` via
        individualization-refinement.

        Color classes (refined from the label partition) are ordered by
        color; ties within a class are broken by branching on each member
        and keeping the ordering whose edge encoding is smallest.
        """
        nodes = tuple(self._labels)
        best: list = [None, None]  # (encoding, order)
        leaves = [0]

        def encode(order: tuple) -> tuple:
            position = {node: i for i, node in enumerate(order)}
            return tuple(sorted(
                tuple(sorted(position[node] for node in edge))
                for edge in self._edges
            ))

        def search(colors: dict) -> None:
            colors = self._refine(colors)
            classes: dict = {}
            for node in nodes:
                classes.setdefault(colors[node], []).append(node)
            ambiguous = None
            for color in sorted(classes):
                if len(classes[color]) > 1:
                    ambiguous = color
                    break
            if ambiguous is None:
                order = tuple(
                    classes[color][0] for color in sorted(classes)
                )
                encoding = encode(order)
                if best[0] is None or encoding < best[0]:
                    best[0], best[1] = encoding, order
                leaves[0] += 1
                return
            for node in classes[ambiguous]:
                if leaves[0] >= _CANONICAL_LEAF_CAP:
                    return
                individualized = dict(colors)
                individualized[node] = -1
                search(individualized)

        initial = {n: repr(self._labels[n]) for n in nodes}
        palette = {s: i for i, s in enumerate(sorted(set(initial.values())))}
        search({n: palette[initial[n]] for n in nodes})
        return best[1], best[0]

    def __eq__(self, other: object) -> bool:
        """Label-preserving isomorphism (at least up to node renaming)."""
        if not isinstance(other, QueryGraph):
            return NotImplemented
        if (self.num_nodes != other.num_nodes
                or self.num_edges != other.num_edges):
            return False
        return self.canonical_form() == other.canonical_form()

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryGraph(nodes={self.num_nodes}, edges={self.num_edges})"
