"""Query path decomposition (Section 5.2.1).

Splits a query into overlapping paths of length at most ``L`` covering
every query edge, minimizing the estimated initial search-space size

``SS0(P) = prod_P C(P, α)``, with
``C(P, α) ∝ |PIndex(l_Q(V_P), α)| / (degree(P) · density(P))``.

The minimization reduces to weighted SET COVER over the query edges and
is solved with the standard greedy approximation: repeatedly add the
path with the best efficiency (newly covered edges divided by cost).
For small queries an exact branch-free dynamic program over covered-set
bitmasks (``strategy="exact"``) minimizes the cost product optimally,
falling back to greedy past a size cutoff. A random strategy is
provided as the paper's "Random decomposition" baseline.

All strategies are deterministic for a given seed: candidate paths and
tie-breaks are ordered by canonical (``repr``-based) path keys, never
by set-iteration order, so the chosen plan is stable across processes
and ``PYTHONHASHSEED`` values — a requirement for plan caching
(:mod:`repro.query.plan`).
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Sequence

from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError
from repro.utils.rng import ensure_rng

#: Floor applied to degree/density denominators so isolated nodes and
#: degenerate paths keep a finite cost.
_EPSILON = 1e-9

#: Exact-cover cutoffs: past either, ``strategy="exact"`` falls back to
#: greedy. The DP visits ``2^elements * candidates`` states, so both
#: bounds keep worst-case planning in the low milliseconds.
_EXACT_MAX_ELEMENTS = 14
_EXACT_MAX_CANDIDATES = 64


@dataclass(frozen=True)
class QueryPath:
    """One path of a decomposition: an ordered tuple of query nodes."""

    nodes: tuple

    @property
    def length(self) -> int:
        """Number of edges on the path."""
        return len(self.nodes) - 1

    @property
    def path_edges(self) -> frozenset:
        """The query edges traversed by the path."""
        return frozenset(
            frozenset(pair) for pair in zip(self.nodes, self.nodes[1:])
        )

    def position_of(self, node) -> int:
        """Index of ``node`` on the path."""
        return self.nodes.index(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryPath({'-'.join(map(str, self.nodes))})"


@dataclass
class Decomposition:
    """A path decomposition with join structure and coverage assignment.

    Attributes
    ----------
    paths:
        The chosen query paths, in selection order.
    join_predicates:
        ``{(i, j): ((pos_in_i, pos_in_j), ...)}`` for every unordered
        pair of overlapping paths (stored for ``i < j``): shared query
        nodes expressed as position equalities.
    joins_with:
        ``{i: frozenset of j}`` — partitions path ``i`` must join with.
    covered_nodes / covered_edges:
        ``{i: (...)}`` — exclusive assignment of every query node/edge to
        exactly one covering path (used for the w1 weights of Section
        5.2.4 so no probability is double counted).
    estimated_cost:
        The estimated search-space size of this decomposition.
    strategy_used:
        The strategy that actually produced the paths (``"exact"`` may
        report ``"greedy"`` after a size-cutoff fallback).
    """

    query: QueryGraph
    paths: list
    join_predicates: dict = field(default_factory=dict)
    joins_with: dict = field(default_factory=dict)
    covered_nodes: dict = field(default_factory=dict)
    covered_edges: dict = field(default_factory=dict)
    estimated_cost: float = 0.0
    strategy_used: str = "greedy"

    def __post_init__(self) -> None:
        self._derive_join_structure()
        self._assign_exclusive_coverage()

    def _derive_join_structure(self) -> None:
        predicates = {}
        joins: dict = {i: set() for i in range(len(self.paths))}
        for i, path_i in enumerate(self.paths):
            nodes_i = {n: p for p, n in enumerate(path_i.nodes)}
            for j in range(i + 1, len(self.paths)):
                path_j = self.paths[j]
                shared = []
                for pos_j, node in enumerate(path_j.nodes):
                    pos_i = nodes_i.get(node)
                    if pos_i is not None:
                        shared.append((pos_i, pos_j))
                if shared:
                    predicates[(i, j)] = tuple(shared)
                    joins[i].add(j)
                    joins[j].add(i)
        self.join_predicates = predicates
        self.joins_with = {i: frozenset(js) for i, js in joins.items()}

    def _assign_exclusive_coverage(self) -> None:
        assigned_nodes: set = set()
        assigned_edges: set = set()
        covered_nodes = {}
        covered_edges = {}
        for i, path in enumerate(self.paths):
            own_nodes = tuple(
                n for n in path.nodes if n not in assigned_nodes
            )
            assigned_nodes.update(own_nodes)
            own_edges = tuple(
                e for e in path.path_edges if e not in assigned_edges
            )
            assigned_edges.update(own_edges)
            covered_nodes[i] = own_nodes
            covered_edges[i] = own_edges
        missing_nodes = set(self.query.nodes) - assigned_nodes
        if missing_nodes:
            raise QueryError(
                f"decomposition does not cover query nodes {missing_nodes}"
            )
        missing_edges = set(self.query.edges) - assigned_edges
        if missing_edges:
            raise QueryError(
                f"decomposition does not cover query edges "
                f"{[tuple(e) for e in missing_edges]}"
            )
        self.covered_nodes = covered_nodes
        self.covered_edges = covered_edges

    def predicates_between(self, i: int, j: int) -> tuple:
        """Join predicates between partitions ``i`` and ``j`` as
        ``((pos_in_i, pos_in_j), ...)`` regardless of argument order."""
        if i < j:
            return self.join_predicates.get((i, j), ())
        return tuple(
            (pi, pj) for pj, pi in self.join_predicates.get((j, i), ())
        )


# ----------------------------------------------------------------------
# Candidate path enumeration and cost model
# ----------------------------------------------------------------------


def enumerate_candidate_paths(query: QueryGraph, max_length: int) -> list:
    """All simple paths of the query with 1..max_length edges.

    Single-node paths are added for isolated query nodes (they cannot be
    covered by any edge path). Each undirected path is returned once, in
    canonical orientation.
    """
    if max_length < 1:
        raise QueryError(f"max_length must be >= 1, got {max_length}")
    paths: set = set()

    def extend(nodes: tuple) -> None:
        if len(nodes) - 1 >= 1:
            fwd = nodes
            rev = tuple(reversed(nodes))
            paths.add(fwd if repr(fwd) <= repr(rev) else rev)
        if len(nodes) - 1 >= max_length:
            return
        tail = nodes[-1]
        for neighbor in query.neighbors(tail):
            if neighbor not in nodes:
                extend(nodes + (neighbor,))

    for node in query.nodes:
        extend((node,))
    result = [QueryPath(nodes) for nodes in sorted(paths, key=repr)]
    for node in query.nodes:
        if query.degree(node) == 0:
            result.append(QueryPath((node,)))
    return result


def path_degree(query: QueryGraph, path: QueryPath) -> int:
    """``degree(P) = sum of node degrees - 2 * length(P)`` (Section 5.2.1)."""
    return sum(query.degree(n) for n in path.nodes) - 2 * path.length


def path_density(query: QueryGraph, path: QueryPath) -> float:
    """``density(P) = 2K / (M(M-1))`` with ``K`` query edges among path nodes.

    Counts edges by probing the O(M²) node pairs on the path rather than
    scanning all query edges — paths are short (M <= L+1) while dense
    queries have many edges.
    """
    nodes = path.nodes
    m = len(nodes)
    if m <= 1:
        return 1.0
    k = 0
    for i, node_a in enumerate(nodes):
        for node_b in nodes[i + 1:]:
            if query.has_edge(node_a, node_b):
                k += 1
    return 2.0 * k / (m * (m - 1))


def path_cost(
    query: QueryGraph, path: QueryPath, cardinality_estimate: float
) -> float:
    """``C(P, α) ∝ |PIndex| / (degree(P) · density(P))``."""
    denominator = max(
        path_degree(query, path) * path_density(query, path), _EPSILON
    )
    return max(cardinality_estimate, _EPSILON) / denominator


# ----------------------------------------------------------------------
# Decomposition strategies
# ----------------------------------------------------------------------


def decompose_query(
    query: QueryGraph,
    estimator,
    alpha: float,
    max_length: int,
    strategy: str = "greedy",
    seed=None,
) -> Decomposition:
    """Decompose ``query`` into covering paths.

    Parameters
    ----------
    estimator:
        Callable ``(label_sequence, alpha) -> float`` estimating
        ``|PIndex(X, alpha)|`` (normally the path index's histogram
        estimator).
    alpha:
        Query probability threshold.
    max_length:
        Maximum path length ``L`` (must match the index).
    strategy:
        ``"greedy"`` (paper's SET COVER approximation), ``"exact"``
        (optimal cost-product cover via bitmask DP, greedy fallback past
        the size cutoffs) or ``"random"`` (the Random-decomposition
        baseline).
    seed:
        RNG seed for the random strategy.
    """
    candidates = enumerate_candidate_paths(query, max_length)
    if not candidates:
        raise QueryError("query has no candidate decomposition paths")
    used = strategy
    if strategy == "greedy":
        chosen, cost = _greedy_cover(query, candidates, estimator, alpha)
    elif strategy == "exact":
        result = _exact_cover(query, candidates, estimator, alpha)
        if result is None:  # past the cutoffs: greedy is the fallback
            chosen, cost = _greedy_cover(query, candidates, estimator, alpha)
            used = "greedy"
        else:
            chosen, cost = result
    elif strategy == "random":
        chosen, cost = _random_cover(query, candidates, estimator, alpha, seed)
    else:
        raise QueryError(f"unknown decomposition strategy {strategy!r}")
    return Decomposition(
        query=query, paths=chosen, estimated_cost=cost, strategy_used=used
    )


def _path_key(path: QueryPath) -> tuple:
    """Canonical, hash-seed-independent ordering key of a query path."""
    return tuple(map(repr, path.nodes))


def _path_costs(
    query: QueryGraph,
    candidates: Sequence[QueryPath],
    estimator,
    alpha: float,
) -> list:
    return [
        path_cost(
            query, path, estimator(query.label_sequence(path.nodes), alpha)
        )
        for path in candidates
    ]


def _greedy_cover(
    query: QueryGraph,
    candidates: Sequence[QueryPath],
    estimator,
    alpha: float,
) -> tuple:
    costs = _path_costs(query, candidates, estimator, alpha)
    keys = [_path_key(path) for path in candidates]
    edge_sets = [path.path_edges for path in candidates]
    node_sets = [set(path.nodes) for path in candidates]
    uncovered_edges = set(query.edges)
    uncovered_nodes = {n for n in query.nodes if query.degree(n) == 0}
    chosen_indexes: set = set()
    chosen: list = []
    total_cost = 1.0
    while uncovered_edges or uncovered_nodes:
        best = None
        best_efficiency = -1.0
        for index, path in enumerate(candidates):
            if index in chosen_indexes:
                continue
            gain = len(edge_sets[index] & uncovered_edges)
            if uncovered_nodes:
                gain += len(node_sets[index] & uncovered_nodes)
            if gain == 0:
                continue
            efficiency = gain / costs[index]
            # Equal-efficiency ties break on the canonical path key, not
            # enumeration order, so the chosen plan is reproducible
            # across processes and PYTHONHASHSEED values (the same
            # discipline as repro.query.topk.top_k_matches).
            if efficiency > best_efficiency or (
                best is not None
                and efficiency == best_efficiency
                and keys[index] < keys[best]
            ):
                best_efficiency = efficiency
                best = index
        if best is None:
            raise QueryError("greedy cover failed to cover the query")
        chosen_indexes.add(best)
        chosen.append(candidates[best])
        total_cost *= costs[best]
        uncovered_edges -= edge_sets[best]
        uncovered_nodes -= node_sets[best]
    return chosen, total_cost


def _exact_cover(
    query: QueryGraph,
    candidates: Sequence[QueryPath],
    estimator,
    alpha: float,
):
    """Minimum-cost-product cover by dynamic programming over bitmasks.

    The universe is the query's edges plus its isolated nodes; each
    state is the set of covered elements, valued by the minimal sum of
    log-costs reaching it (the product ``SS0`` is minimized iff the log
    sum is). Branching only on candidates covering the lowest-index
    missing element keeps every cover reachable exactly once per
    selection set. Returns ``None`` past the size cutoffs — the caller
    falls back to greedy.
    """
    # Edges are frozensets: repr() of equal frozensets is *not* stable
    # (iteration order depends on insertion history and hash seed), so
    # order them by their sorted member reprs instead.
    elements = [
        ("edge", edge)
        for edge in sorted(
            query.edges, key=lambda e: tuple(sorted(map(repr, e)))
        )
    ]
    elements += [
        ("node", node)
        for node in sorted(query.nodes, key=repr)
        if query.degree(node) == 0
    ]
    num_elements = len(elements)
    if (
        num_elements > _EXACT_MAX_ELEMENTS
        or len(candidates) > _EXACT_MAX_CANDIDATES
    ):
        return None
    element_bit = {element: 1 << i for i, element in enumerate(elements)}
    # Canonical candidate order makes equal-cost DP outcomes (and hence
    # the cached plan) deterministic across processes.
    order = sorted(range(len(candidates)), key=lambda i: _path_key(candidates[i]))
    costs = _path_costs(query, candidates, estimator, alpha)
    masks = []
    for index in order:
        path = candidates[index]
        mask = 0
        for edge in path.path_edges:
            mask |= element_bit.get(("edge", edge), 0)
        for node in path.nodes:
            mask |= element_bit.get(("node", node), 0)
        masks.append(mask)
    log_costs = [math.log(costs[index]) for index in order]
    full = (1 << num_elements) - 1
    dp: list = [None] * (full + 1)
    dp[0] = (0.0, ())
    for state in range(full):
        entry = dp[state]
        if entry is None:
            continue
        missing = ~state & full
        lowest = missing & -missing
        state_log, selection = entry
        for position, mask in enumerate(masks):
            if not mask & lowest:
                continue
            new_state = state | mask
            new_log = state_log + log_costs[position]
            current = dp[new_state]
            if current is None or new_log < current[0]:
                dp[new_state] = (new_log, selection + (position,))
    final = dp[full]
    if final is None:
        raise QueryError("exact cover failed to cover the query")
    chosen = [candidates[order[position]] for position in final[1]]
    total_cost = 1.0
    for position in final[1]:
        total_cost *= costs[order[position]]
    return chosen, total_cost


def _random_cover(
    query: QueryGraph,
    candidates: Sequence[QueryPath],
    estimator,
    alpha: float,
    seed,
) -> tuple:
    rng = ensure_rng(seed)
    order = list(candidates)
    rng.shuffle(order)
    uncovered_edges = set(query.edges)
    uncovered_nodes = {n for n in query.nodes if query.degree(n) == 0}
    chosen: list = []
    total_cost = 1.0
    for path in order:
        gain = bool(path.path_edges & uncovered_edges) or bool(
            set(path.nodes) & uncovered_nodes
        )
        if not gain:
            continue
        chosen.append(path)
        total_cost *= path_cost(
            query, path, estimator(query.label_sequence(path.nodes), alpha)
        )
        uncovered_edges -= path.path_edges
        uncovered_nodes -= set(path.nodes)
        if not uncovered_edges and not uncovered_nodes:
            break
    if uncovered_edges or uncovered_nodes:
        raise QueryError("random cover failed to cover the query")
    return chosen, total_cost
