"""Top-k probabilistic matching — a threshold-free query mode.

The paper's queries require a probability threshold α. In exploratory
use one often wants "the k most probable matches" instead. This module
answers top-k by adaptive threshold descent: start optimistic, reuse the
engine's α-threshold machinery, and geometrically lower α until at
least ``k`` matches are found (or a floor is hit). Every probe is a
sound-and-complete α-query, so the returned prefix is exact.
"""

from __future__ import annotations

from repro.obs.trace import current_span
from repro.query.engine import QueryEngine, QueryOptions
from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError


def top_k_matches(
    engine: QueryEngine,
    query: QueryGraph,
    k: int,
    start_alpha: float = 0.5,
    floor: float = 1e-4,
    shrink: float = 0.25,
    options: QueryOptions | None = None,
) -> list:
    """The ``k`` most probable matches of ``query``.

    Parameters
    ----------
    engine:
        A constructed :class:`~repro.query.engine.QueryEngine`.
    k:
        Number of matches wanted (fewer are returned if fewer exist
        above ``floor``).
    start_alpha:
        First probed threshold.
    floor:
        Lowest threshold probed; matches below it are not discovered.
    shrink:
        Geometric factor applied to α between probes (0 < shrink < 1).

    Notes
    -----
    The probe sequence is monotone decreasing, so the final α-query's
    result is a superset of all earlier ones; the final probe's matches
    are explicitly re-sorted by probability descending — the engine's
    emission order is *not* part of its contract — with ties broken by
    the match's canonical key ascending (rendered hash-seed
    independently), so the returned prefix is deterministic: when
    several matches tie at the k-th probability, the ones with the
    smallest canonical keys are kept. The k-th match is exact whenever
    it lies above ``floor``.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not 0.0 < shrink < 1.0:
        raise QueryError(f"shrink must be in (0, 1), got {shrink}")
    if not 0.0 < floor <= start_alpha <= 1.0:
        raise QueryError(
            f"need 0 < floor <= start_alpha <= 1, got "
            f"floor={floor}, start_alpha={start_alpha}"
        )
    alpha = start_alpha
    matches = []
    # Nests the probe queries under an ambient span when one is active
    # (the null span otherwise, at no cost).
    with current_span().child("topk") as span:
        while True:
            span.incr("probes")
            matches = list(engine.query(query, alpha, options).matches)
            if len(matches) >= k or alpha <= floor:
                break
            alpha = max(alpha * shrink, floor)
        if span.enabled:
            span.set("k", k)
            span.set("final_alpha", alpha)
    matches.sort(key=_rank_key)
    return matches[:k]


def _rank_key(match) -> tuple:
    """Sort key: probability descending, canonical key ascending.

    The canonical key is rendered with every reference set expanded in
    sorted order — ``repr`` of a frozenset follows hash-table order,
    which varies with ``PYTHONHASHSEED`` for string references, so it
    must not leak into the ranking.
    """
    nodes = tuple(
        sorted(
            (tuple(sorted(map(repr, entity))), repr(label))
            for entity, label in match.nodes
        )
    )
    edges = tuple(
        sorted(
            tuple(sorted(tuple(sorted(map(repr, e))) for e in pair))
            for pair in match.edges
        )
    )
    return (-match.probability, nodes, edges)
