"""A tiny textual pattern language for query graphs.

Grammar (whitespace-insensitive)::

    pattern  :=  clause ( ';' clause )*
    clause   :=  node ( '-' node )*          # a path of query nodes
    node     :=  '(' name ( ':' label )? ')'

Every node must carry its label on at least one mention; later mentions
may omit it. Example — a triangle with a pendant node::

    (a:DB)-(b:ML)-(c:DB)-(a); (c)-(d:SE)

parses to a :class:`~repro.query.query_graph.QueryGraph` with nodes
``a, b, c, d`` and edges ``a-b, b-c, c-a, c-d``. Used by the CLI and
handy in notebooks and tests.
"""

from __future__ import annotations

import re

from repro.query.query_graph import QueryGraph
from repro.utils.errors import QueryError

_NODE = re.compile(
    r"\(\s*(?P<name>[A-Za-z0-9_]+)\s*(?::\s*(?P<label>[^)\s]+)\s*)?\)"
)


def parse_pattern(text: str) -> QueryGraph:
    """Parse the pattern language into a :class:`QueryGraph`.

    Raises :class:`QueryError` with a position-specific message on
    malformed input, unknown syntax, missing labels, or conflicting
    label redeclarations.
    """
    if not text or not text.strip():
        raise QueryError("empty pattern")
    labels: dict = {}
    edges: list = []
    seen_edges: set = set()
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        nodes = _parse_clause(clause, labels)
        for left, right in zip(nodes, nodes[1:]):
            if left == right:
                raise QueryError(
                    f"self-loop on node {left!r} in clause {clause!r}"
                )
            key = frozenset((left, right))
            if key not in seen_edges:
                seen_edges.add(key)
                edges.append((left, right))
    unlabeled = [name for name, label in labels.items() if label is None]
    if unlabeled:
        raise QueryError(
            f"nodes {unlabeled} never received a label; write "
            "(name:label) on at least one mention"
        )
    return QueryGraph(labels, edges)


def _parse_clause(clause: str, labels: dict) -> list:
    nodes = []
    position = 0
    expect_node = True
    while position < len(clause):
        if clause[position].isspace():
            position += 1
            continue
        if expect_node:
            match = _NODE.match(clause, position)
            if not match:
                raise QueryError(
                    f"expected a node '(name[:label])' at position "
                    f"{position} of clause {clause!r}"
                )
            name = match.group("name")
            label = match.group("label")
            previous = labels.get(name)
            if label is not None:
                if previous is not None and previous != label:
                    raise QueryError(
                        f"node {name!r} declared with conflicting labels "
                        f"{previous!r} and {label!r}"
                    )
                labels[name] = label
            elif name not in labels:
                labels[name] = None
            nodes.append(name)
            position = match.end()
            expect_node = False
        else:
            if clause[position] != "-":
                raise QueryError(
                    f"expected '-' between nodes at position {position} "
                    f"of clause {clause!r}"
                )
            position += 1
            expect_node = True
    if expect_node and nodes:
        raise QueryError(f"clause {clause!r} ends with a dangling '-'")
    if not nodes:
        raise QueryError(f"clause {clause!r} contains no nodes")
    return nodes
