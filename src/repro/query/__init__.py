"""Online query processing (Section 5.2).

The five steps of the paper's online phase map to submodules:

1. :mod:`repro.query.decompose` — path decomposition via greedy SET
   COVER (or exact bitmask DP) over a histogram-based cost model,
   adaptively planned by :mod:`repro.query.plan` (plan caching keyed
   by canonical query form, estimator feedback from observed lookup
   cardinalities),
2. :mod:`repro.query.candidates` — index lookup plus node-level and
   path-level context pruning,
3. :mod:`repro.query.join_candidates` — join-candidate lookup tables,
4. :mod:`repro.query.kpartite` — the candidate k-partite graph and
   reduction by join-candidates (structure + upperbounds; the
   pure-Python reference backend) with its vectorized numpy twin in
   :mod:`repro.query.reduction` (selected via
   ``QueryOptions.reduction_backend``, the default),
5. :mod:`repro.query.matcher` — join ordering and full match generation.

:class:`~repro.query.engine.QueryEngine` ties the offline and online
phases together; :mod:`repro.query.baselines` provides the comparison
algorithms of Section 6.2.1.
"""

from repro.query.query_graph import QueryGraph
from repro.query.decompose import QueryPath, Decomposition, decompose_query
from repro.query.engine import QueryEngine, QueryOptions, QueryResult
from repro.query.plan import EstimatorFeedback, PlanInfo, QueryPlanner
from repro.query.baselines import (
    exhaustive_matches,
    direct_matches,
)
from repro.query.explain import explain
from repro.query.topk import top_k_matches
from repro.query.pattern import parse_pattern

__all__ = [
    "QueryGraph",
    "QueryPath",
    "Decomposition",
    "decompose_query",
    "QueryEngine",
    "QueryOptions",
    "QueryResult",
    "QueryPlanner",
    "PlanInfo",
    "EstimatorFeedback",
    "exhaustive_matches",
    "direct_matches",
    "explain",
    "top_k_matches",
    "parse_pattern",
]
