"""Join ordering and full match generation (Section 5.2.5).

Paths are joined one at a time following the paper's heuristic order
(most node overlap, then most join predicates, then smallest candidate
count); each partial match is extended through the reduced k-partite
graph's links, with injectivity, reference-disjointness and an exact
partial-probability bound enforced as soon as possible.
"""

from __future__ import annotations

from repro.peg.entity_graph import Match, ProbabilisticEntityGraph
from repro.query.decompose import Decomposition


def determine_join_order(
    decomposition: Decomposition, cardinalities: dict
) -> list:
    """Order partitions for the progressive join (paper's heuristic).

    1. most nodes overlapping the already-ordered paths,
    2. ties: most join predicates with them,
    3. ties: smallest cardinality.
    The first path is picked by cardinality alone.
    """
    remaining = set(range(len(decomposition.paths)))
    ordered: list = []
    placed_nodes: set = set()
    while remaining:
        if not ordered:
            best = min(
                remaining,
                key=lambda i: (cardinalities.get(i, 0), i),
            )
        else:
            def sort_key(i: int) -> tuple:
                path_nodes = set(decomposition.paths[i].nodes)
                overlap = len(path_nodes & placed_nodes)
                predicates = sum(
                    len(decomposition.predicates_between(i, j))
                    for j in ordered
                )
                return (-overlap, -predicates, cardinalities.get(i, 0), i)

            best = min(remaining, key=sort_key)
        ordered.append(best)
        placed_nodes |= set(decomposition.paths[best].nodes)
        remaining.discard(best)
    return ordered


def generate_matches(
    peg: ProbabilisticEntityGraph,
    decomposition: Decomposition,
    kpartite,
    alpha: float,
) -> list:
    """Enumerate all full query matches with probability >= alpha.

    ``kpartite`` is a reduced candidate k-partite graph of either
    backend (:class:`repro.query.kpartite.CandidateKPartiteGraph` or
    :class:`repro.query.reduction.VectorizedKPartiteGraph`); only the
    shared alive-mask/link interface (``alive_counts``,
    ``alive_vertex_ids``, ``candidate_of``, ``is_alive``, ``linked``) is
    consumed. Returns deduplicated
    :class:`~repro.peg.entity_graph.Match` objects: two embeddings
    inducing the same labeled subgraph are one match.
    """
    query = decomposition.query
    order = determine_join_order(
        decomposition,
        {i: count for i, count in enumerate(kpartite.alive_counts())},
    )
    matches: dict = {}

    # Partial state: mapping query node -> peg node id, and the chosen
    # vertex id per processed partition (for link checks).
    def extend(step: int, mapping: dict, chosen: dict) -> None:
        if step == len(order):
            _emit(mapping)
            return
        partition = order[step]
        path = decomposition.paths[partition]
        joined_before = [
            j for j in decomposition.joins_with.get(partition, frozenset())
            if j in chosen
        ]
        candidate_ids = _candidate_vertices(
            kpartite, partition, joined_before, chosen
        )
        for vid in candidate_ids:
            if not kpartite.is_alive(partition, vid):
                continue
            candidate = kpartite.candidate_of(partition, vid)
            new_mapping = _try_extend(mapping, path, candidate)
            if new_mapping is None:
                continue
            if _partial_probability(new_mapping) < alpha:
                continue
            new_chosen = dict(chosen)
            new_chosen[partition] = vid
            extend(step + 1, new_mapping, new_chosen)

    def _candidate_vertices(kpartite, partition, joined_before, chosen):
        if not joined_before:
            return kpartite.alive_vertex_ids(partition)
        sets = [
            kpartite.linked(j, chosen[j], partition) for j in joined_before
        ]
        result = set(sets[0])
        for other in sets[1:]:
            result &= other
        return sorted(result)

    def _try_extend(mapping: dict, path, candidate) -> dict | None:
        new_mapping = dict(mapping)
        used = set(mapping.values())
        for query_node, peg_node in zip(path.nodes, candidate.nodes):
            previous = new_mapping.get(query_node)
            if previous is not None:
                if previous != peg_node:
                    return None
                continue
            if peg_node in used:
                return None  # injectivity across distinct query nodes
            for existing in new_mapping.values():
                if peg.shares_references_id(existing, peg_node):
                    return None
            new_mapping[query_node] = peg_node
            used.add(peg_node)
        return new_mapping

    def _partial_probability(mapping: dict) -> float:
        node_labels = {
            peg.entity_of(peg_node): query.label(query_node)
            for query_node, peg_node in mapping.items()
        }
        edges = set()
        for edge in query.edges:
            node_a, node_b = tuple(edge)
            if node_a in mapping and node_b in mapping:
                edges.add(
                    frozenset(
                        (
                            peg.entity_of(mapping[node_a]),
                            peg.entity_of(mapping[node_b]),
                        )
                    )
                )
        return peg.match_probability(node_labels, edges)

    def _emit(mapping: dict) -> None:
        node_labels = {
            peg.entity_of(peg_node): query.label(query_node)
            for query_node, peg_node in mapping.items()
        }
        edges = set()
        for edge in query.edges:
            node_a, node_b = tuple(edge)
            edges.add(
                frozenset(
                    (
                        peg.entity_of(mapping[node_a]),
                        peg.entity_of(mapping[node_b]),
                    )
                )
            )
        probability = peg.match_probability(node_labels, edges)
        if probability < alpha:
            return
        nodes_key = tuple(
            sorted(node_labels.items(), key=lambda kv: repr(kv[0]))
        )
        key = (nodes_key, frozenset(edges))
        if key in matches:
            return
        entity_mapping = tuple(
            sorted(
                ((q, peg.entity_of(n)) for q, n in mapping.items()),
                key=lambda kv: repr(kv[0]),
            )
        )
        matches[key] = Match(
            nodes=nodes_key,
            edges=frozenset(edges),
            mapping=entity_mapping,
            probability=probability,
        )

    extend(0, {}, {})
    return sorted(
        matches.values(), key=lambda m: (-m.probability, repr(m.nodes))
    )
