"""Human-readable explanations of query evaluations.

``explain`` renders a :class:`~repro.query.engine.QueryResult` the way a
database EXPLAIN ANALYZE would: the chosen decomposition, per-stage
search-space sizes, reduction statistics, timings, and the top matches.
Useful when tuning β/γ/L or debugging why a query returns nothing.
"""

from __future__ import annotations

from repro.query.engine import QueryResult


def explain(result: QueryResult, max_matches: int = 5) -> str:
    """Render a query result as a readable multi-line report.

    When the result carries planner provenance
    (:class:`~repro.query.plan.PlanInfo`), the report names the
    requested strategy, where the plan came from (``cache``, ``exact``,
    ``greedy`` or ``random`` — a size-cutoff fallback from exact shows
    ``greedy``) and its estimated cost, plus one line per partition
    comparing the planner's cardinality estimate against the observed
    raw index count (``x{ratio}`` above 1 means the estimator
    undershot; the feedback loop uses exactly these pairs).
    """
    lines = ["query evaluation"]
    if result.plan is not None:
        plan = result.plan
        source = "cache" if plan.cached else plan.source
        lines.append(
            f"  plan: strategy={plan.strategy} source={source}  "
            f"estimated cost {plan.estimated_cost:.4g}"
        )
    lines.append("  decomposition:")
    for i, nodes in enumerate(result.decomposition_paths):
        rendered = " - ".join(str(n) for n in nodes)
        count = result.candidate_counts.get(i)
        suffix = f"  ({count} candidates)" if count is not None else ""
        lines.append(f"    P{i}: {rendered}{suffix}")
    if result.estimate_observations:
        lines.append("  cardinality estimates (estimated vs observed):")
        for i in sorted(result.estimate_observations):
            estimated, observed = result.estimate_observations[i]
            if estimated > 0:
                ratio = f"x{observed / estimated:.2f}"
            else:
                ratio = "x-" if observed else "x1.00"
            lines.append(
                f"    P{i}: est {estimated:8.4g}  obs {observed:6d}  {ratio}"
            )
    if result.link_stats:
        stats = result.link_stats
        cache = ""
        if stats.get("cache_hits") or stats.get("cache_misses"):
            cache = (
                f"  cache {stats['cache_hits']} hit"
                f"/{stats['cache_misses']} miss"
            )
        lines.append(
            f"  links: backend={stats['backend']} "
            f"pairs={stats['pairs']}{cache}"
        )
    lines.append("  search space:")
    lines.append(f"    after index lookup:   {result.search_space_path:.4g}")
    lines.append(f"    after context pruning:{result.search_space_context:.4g}")
    lines.append(f"    after joint reduction:{result.search_space_final:.4g}")
    if result.reduction is not None:
        reduction = result.reduction
        lines.append(
            "  reduction: "
            f"structure removed {reduction.structure_removed}, "
            f"upperbounds removed {reduction.upperbound_removed}, "
            f"{reduction.rounds} message rounds"
        )
    if result.timings:
        lines.append("  timings (ms):")
        for stage, seconds in result.timings.items():
            lines.append(f"    {stage:<12s}{seconds * 1000:8.2f}")
        lines.append(f"    {'total':<12s}{result.total_seconds * 1000:8.2f}")
    lines.append(f"  matches: {len(result.matches)}")
    for match in result.matches[:max_matches]:
        rendered = ", ".join(
            "{" + ",".join(str(r) for r in sorted(entity, key=str)) + "}"
            f":{label}"
            for entity, label in match.nodes
        )
        lines.append(f"    Pr={match.probability:.4f}  {rendered}")
    if len(result.matches) > max_matches:
        lines.append(f"    ... {len(result.matches) - max_matches} more")
    return "\n".join(lines)
