"""Join-candidate lookup tables (Section 5.2.3).

For every ordered pair of joining query paths ``(P, P_i)`` the engine
builds a hash table ``T(P, P_i)`` keyed by the nodes a candidate of
``P`` exposes at the join positions; given a candidate of ``P_i``, its
joinable candidates in ``P`` are fetched with one lookup. Links are
further filtered by the joined-subgraph probability and the reference
disjointness constraint before entering the k-partite graph.
"""

from __future__ import annotations

from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.decompose import Decomposition


class JoinCandidateTables:
    """Hash tables for join-candidate retrieval between partitions."""

    def __init__(
        self,
        decomposition: Decomposition,
        candidates: dict,
    ) -> None:
        self.decomposition = decomposition
        self.candidates = candidates
        # table[(i, j)]: for partitions i, j that join, a dict mapping the
        # tuple of partition-i candidate nodes at i's join positions to
        # the list of candidate indices exposing those nodes.
        self._tables: dict = {}
        for i, joined in decomposition.joins_with.items():
            for j in joined:
                predicates = decomposition.predicates_between(i, j)
                positions_i = tuple(pos_i for pos_i, _ in predicates)
                table: dict = {}
                for index, candidate in enumerate(candidates[i]):
                    key = tuple(candidate.nodes[pos] for pos in positions_i)
                    table.setdefault(key, []).append(index)
                self._tables[(i, j)] = (positions_i, table)

    def joinable(self, i: int, candidate_index: int, j: int) -> list:
        """Indices of partition-``j`` candidates joinable with candidate
        ``candidate_index`` of partition ``i`` (predicate equality only;
        probability and reference filters are applied by the caller).

        Table ``(j, i)`` is keyed by the partition-``j`` nodes at ``j``'s
        join positions; ``predicates_between`` preserves predicate order
        between the two argument orders, so the partition-``i`` key built
        here aligns with it component-wise.
        """
        entry = self._tables.get((j, i))
        if entry is None:
            return []
        _, table = entry
        predicates = self.decomposition.predicates_between(i, j)
        candidate = self.candidates[i][candidate_index]
        key = tuple(candidate.nodes[pos_i] for pos_i, _ in predicates)
        return table.get(key, [])


def joined_probability(
    peg: ProbabilisticEntityGraph,
    decomposition: Decomposition,
    i: int,
    candidate_i,
    j: int,
    candidate_j,
) -> float:
    """Exact probability of the subgraph ``P^u_i ∘ P^u_j`` (both paths).

    Returns 0 when the combination is inconsistent: two distinct query
    nodes mapped to the same entity, or entities sharing references.

    Factors are multiplied in a *deterministic* order — labels in query
    node assignment order (path ``i`` then path ``j``, first occurrence
    wins), edges in path-traversal order deduplicated by query edge,
    existence marginals grouped by identity component in assignment
    order — so the vectorized link builder
    (:func:`repro.query.links.build_candidate_links_vectorized`), which
    gathers the same factors elementwise in the same order, produces
    bit-identical floats. Under injectivity the query-edge
    deduplication coincides with the entity-pair deduplication the
    probability model requires.
    """
    query = decomposition.query
    path_i = decomposition.paths[i]
    path_j = decomposition.paths[j]
    assigned: dict = {}
    for path, candidate in ((path_i, candidate_i), (path_j, candidate_j)):
        for query_node, peg_node in zip(path.nodes, candidate.nodes):
            previous = assigned.get(query_node)
            if previous is not None and previous != peg_node:
                return 0.0
            assigned[query_node] = peg_node
    # Injectivity: distinct query nodes need distinct entities.
    if len(set(assigned.values())) != len(assigned):
        return 0.0
    peg_nodes = list(assigned.values())
    for a_index, node_a in enumerate(peg_nodes):
        for node_b in peg_nodes[a_index + 1:]:
            if peg.shares_references_id(node_a, node_b):
                return 0.0
    prob = 1.0
    for query_node, peg_node in assigned.items():
        prob *= peg.label_probability_id(peg_node, query.label(query_node))
        if prob == 0.0:
            return 0.0
    seen_edges: set = set()
    for path in (path_i, path_j):
        for node_a, node_b in zip(path.nodes, path.nodes[1:]):
            edge = frozenset((node_a, node_b))
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            prob *= peg.edge_probability_id(
                assigned[node_a],
                assigned[node_b],
                query.label(node_a),
                query.label(node_b),
            )
            if prob == 0.0:
                return 0.0
    return prob * peg.existence_marginal_ids(peg_nodes)
