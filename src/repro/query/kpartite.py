"""Candidate k-partite graph and joint search-space reduction (§5.2.4).

One partition per query path; one vertex per candidate path match; one
link per satisfiable join. Two reduction principles run to fixpoint:

* **Reduction by structure** — a vertex with no link into a partition
  its query path joins with cannot appear in any full match; delete it
  (and cascade).
* **Reduction by upperbounds** — perception-vector message passing.
  Every vertex carries one entry per partition upper-bounding the ``w1``
  weight of any vertex of that partition it can co-occur with; the entry
  for its own partition is its own ``w1`` (the exclusive label/edge
  probability of Section 5.2.4) and stays fixed. An update takes, for
  each other entry ``p``, the minimum over joined partitions of the
  maximum entry-``p`` value among linked neighbors. A vertex is deleted
  when the product of its vector entries times its identity weight
  ``w2 = Prn(P^u)`` drops below the query threshold α.

Updates are incremental (only vertices whose neighborhood changed are
recomputed) and optionally thread-parallel in Jacobi rounds, mirroring
the paper's shared-memory implementation.

This module is the pure-Python reference backend
(``reduction_backend="python"``); :mod:`repro.query.reduction` holds
the vectorized numpy backend. Both consume the link structure produced
by :func:`build_candidate_links` and expose the same narrow interface
(:meth:`CandidateKPartiteGraph.alive_counts`,
:meth:`~CandidateKPartiteGraph.alive_vertex_ids`,
:meth:`~CandidateKPartiteGraph.candidate_of`,
:meth:`~CandidateKPartiteGraph.is_alive`,
:meth:`~CandidateKPartiteGraph.linked`) the matcher joins through.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.decompose import Decomposition
from repro.query.join_candidates import JoinCandidateTables, joined_probability

#: Vector entries changing by less than this are treated as converged.
_CONVERGENCE_EPSILON = 1e-12


@dataclass
class _Vertex:
    """One candidate path match inside the k-partite graph."""

    candidate: object
    w1: float
    w2: float
    alive: bool = True
    links: dict = field(default_factory=dict)  # partition -> set of vertex ids
    vector: list = field(default_factory=list)


@dataclass
class ReductionStats:
    """Sizes and work counters of one reduction run.

    ``message_updates`` and ``rounds`` are backend-dependent work
    counters (the incremental Python backend recomputes only dirty
    vertices per round, the vectorized backend recomputes every alive
    vertex); sizes and removal counts are backend-independent.
    """

    initial_sizes: tuple = ()
    after_structure_sizes: tuple = ()
    final_sizes: tuple = ()
    structure_removed: int = 0
    upperbound_removed: int = 0
    message_updates: int = 0
    rounds: int = 0

    @staticmethod
    def _product(sizes: tuple) -> float:
        # A query with zero partitions has an empty search space, not a
        # singleton one; the empty product must not report size 1.
        if not sizes:
            return 0.0
        result = 1.0
        for size in sizes:
            result *= size
        return result

    @property
    def initial_search_space(self) -> float:
        """Product of partition sizes before any reduction."""
        return self._product(self.initial_sizes)

    @property
    def after_structure_search_space(self) -> float:
        """Search-space size after the first structure pass."""
        return self._product(self.after_structure_sizes)

    @property
    def final_search_space(self) -> float:
        """Search-space size after the full joint reduction."""
        return self._product(self.final_sizes)


def build_candidate_links(
    peg: ProbabilisticEntityGraph,
    decomposition: Decomposition,
    candidates: dict,
    alpha: float,
) -> dict:
    """Satisfiable join links between candidate partitions.

    Returns ``{(i, j): [(vid, uid), ...]}`` for every joining partition
    pair with ``i < j``: partition-``i`` vertex ``vid`` and
    partition-``j`` vertex ``uid`` agree on the join predicates, their
    joined subgraph is consistent (injective, reference-disjoint) and
    its exact probability reaches ``alpha``. Both reduction backends
    consume this one structure, so their link sets are identical by
    construction.
    """
    tables = JoinCandidateTables(decomposition, candidates)
    links: dict = {}
    for i, joined in decomposition.joins_with.items():
        for j in joined:
            if j < i:
                continue  # links are symmetric; build once per pair
            pairs = []
            for vid, candidate in enumerate(candidates[i]):
                for uid in tables.joinable(i, vid, j):
                    prob = joined_probability(
                        peg, decomposition, i, candidate, j,
                        candidates[j][uid],
                    )
                    if prob < alpha:
                        continue
                    pairs.append((vid, uid))
            links[(i, j)] = pairs
    return links


class CandidateKPartiteGraph:
    """Definition 6: partitions = query paths, vertices = candidates."""

    def __init__(
        self,
        peg: ProbabilisticEntityGraph,
        decomposition: Decomposition,
        candidates: dict,
        alpha: float,
        parallel: bool = False,
        num_threads: int = 4,
        links=None,
    ) -> None:
        self.peg = peg
        self.decomposition = decomposition
        self.alpha = float(alpha)
        self.parallel = bool(parallel)
        self.num_threads = max(int(num_threads), 1)
        self.k = len(decomposition.paths)
        self._build_vertices(candidates)
        self._build_links(candidates, links)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_vertices(self, candidates: dict) -> None:
        peg = self.peg
        query = self.decomposition.query
        self.partitions: list = []
        for i, path in enumerate(self.decomposition.paths):
            own_nodes = self.decomposition.covered_nodes[i]
            own_edges = self.decomposition.covered_edges[i]
            position_of = {node: pos for pos, node in enumerate(path.nodes)}
            vertices = []
            for candidate in candidates[i]:
                w1 = 1.0
                for query_node in own_nodes:
                    peg_node = candidate.nodes[position_of[query_node]]
                    w1 *= peg.label_probability_id(
                        peg_node, query.label(query_node)
                    )
                for edge in own_edges:
                    node_a, node_b = tuple(edge)
                    w1 *= peg.edge_probability_id(
                        candidate.nodes[position_of[node_a]],
                        candidate.nodes[position_of[node_b]],
                        query.label(node_a),
                        query.label(node_b),
                    )
                vector = [1.0] * self.k
                vector[i] = w1
                vertices.append(
                    _Vertex(candidate=candidate, w1=w1, w2=candidate.prn,
                            vector=vector)
                )
            self.partitions.append(vertices)

    def _build_links(self, candidates: dict, links) -> None:
        if links is None:
            links = build_candidate_links(
                self.peg, self.decomposition, candidates, self.alpha
            )
        elif hasattr(links, "pair_lists"):
            # A repro.query.links.LinkSet from the vectorized builder;
            # both builders emit identical pairs, so the backends stay
            # interchangeable.
            links = links.pair_lists()
        for (i, j), pairs in links.items():
            for vid, uid in pairs:
                vertex = self.partitions[i][vid]
                other = self.partitions[j][uid]
                vertex.links.setdefault(j, set()).add(uid)
                other.links.setdefault(i, set()).add(vid)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def alive_counts(self) -> tuple:
        """Number of surviving vertices per partition."""
        return tuple(
            sum(1 for v in vertices if v.alive) for vertices in self.partitions
        )

    def search_space_size(self) -> float:
        """Product of surviving partition sizes (the paper's metric)."""
        result = 1.0
        for count in self.alive_counts():
            result *= count
        return result

    def alive_vertices(self, i: int):
        """``(vertex id, vertex)`` pairs of partition ``i`` still alive."""
        return (
            (vid, vertex)
            for vid, vertex in enumerate(self.partitions[i])
            if vertex.alive
        )

    def alive_vertex_ids(self, i: int) -> list:
        """Vertex ids of partition ``i`` still alive, ascending."""
        return [vid for vid, _ in self.alive_vertices(i)]

    def candidate_of(self, i: int, vid: int):
        """The candidate path match behind vertex ``vid`` of partition ``i``."""
        return self.partitions[i][vid].candidate

    def is_alive(self, i: int, vid: int) -> bool:
        """Whether vertex ``vid`` of partition ``i`` survived so far."""
        return self.partitions[i][vid].alive

    def linked(self, i: int, vid: int, j: int) -> frozenset:
        """Alive partition-``j`` vertices linked to vertex ``vid`` of ``i``."""
        vertex = self.partitions[i][vid]
        return frozenset(
            uid for uid in vertex.links.get(j, ())
            if self.partitions[j][uid].alive
        )

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------

    def reduce(
        self,
        use_structure: bool = True,
        use_upperbounds: bool = True,
        max_rounds: int = 1000,
    ) -> ReductionStats:
        """Run both reductions to fixpoint and return statistics."""
        stats = ReductionStats(initial_sizes=self.alive_counts())
        if use_structure:
            stats.structure_removed += self._reduce_structure()
        stats.after_structure_sizes = self.alive_counts()
        if use_upperbounds:
            self._reduce_upperbounds(stats, use_structure, max_rounds)
        stats.final_sizes = self.alive_counts()
        return stats

    def _delete(self, i: int, vid: int, touched: set | None = None) -> None:
        vertex = self.partitions[i][vid]
        vertex.alive = False
        for j, uids in vertex.links.items():
            for uid in uids:
                other = self.partitions[j][uid]
                other.links.get(i, set()).discard(vid)
                if other.alive and touched is not None:
                    touched.add((j, uid))

    def _reduce_structure(self, changed_neighbors: set | None = None) -> int:
        """Delete vertices missing a link into a required partition.

        ``changed_neighbors``, when given, accumulates the ``(partition,
        vertex id)`` pairs whose neighborhood shrank — the upperbound
        loop re-marks them dirty so their perception vectors are
        recomputed against the post-structure state.
        """
        removed = 0
        worklist = [
            (i, vid)
            for i in range(self.k)
            for vid, vertex in enumerate(self.partitions[i])
            if vertex.alive
        ]
        pending = set(worklist)
        while worklist:
            i, vid = worklist.pop()
            pending.discard((i, vid))
            vertex = self.partitions[i][vid]
            if not vertex.alive:
                continue
            required = self.decomposition.joins_with.get(i, frozenset())
            if all(vertex.links.get(j) for j in required):
                continue
            touched: set = set()
            self._delete(i, vid, touched)
            removed += 1
            if changed_neighbors is not None:
                changed_neighbors |= touched
            for item in touched:
                if item not in pending:
                    pending.add(item)
                    worklist.append(item)
        return removed

    def _recompute_vector(self, i: int, vid: int) -> tuple:
        """New perception vector of one vertex; ``None`` marks deletion."""
        vertex = self.partitions[i][vid]
        required = self.decomposition.joins_with.get(i, frozenset())
        new_vector = list(vertex.vector)
        for p in range(self.k):
            if p == i:
                continue
            best = None
            for j in required:
                linked = vertex.links.get(j)
                maximum = 0.0
                if linked:
                    for uid in linked:
                        other = self.partitions[j][uid]
                        if other.alive and other.vector[p] > maximum:
                            maximum = other.vector[p]
                if best is None or maximum < best:
                    best = maximum
            if best is not None and best < new_vector[p]:
                new_vector[p] = best
        bound = vertex.w2
        for value in new_vector:
            bound *= value
        if bound < self.alpha:
            return None
        return tuple(new_vector)

    def _reduce_upperbounds(
        self, stats: ReductionStats, use_structure: bool, max_rounds: int
    ) -> None:
        dirty = {
            (i, vid)
            for i in range(self.k)
            for vid, vertex in enumerate(self.partitions[i])
            if vertex.alive
        }
        rounds = 0
        while dirty and rounds < max_rounds:
            rounds += 1
            batch = sorted(dirty)
            dirty = set()
            results = self._compute_batch(batch)
            touched: set = set()
            for (i, vid), new_vector in results:
                vertex = self.partitions[i][vid]
                if not vertex.alive:
                    continue
                stats.message_updates += 1
                if new_vector is None:
                    self._delete(i, vid, touched)
                    stats.upperbound_removed += 1
                    continue
                changed = any(
                    old - new > _CONVERGENCE_EPSILON
                    for old, new in zip(vertex.vector, new_vector)
                )
                vertex.vector = list(new_vector)
                if changed:
                    for j, uids in vertex.links.items():
                        for uid in uids:
                            if self.partitions[j][uid].alive:
                                touched.add((j, uid))
            if use_structure and touched:
                stats.structure_removed += self._reduce_structure(touched)
            dirty |= {
                item
                for item in touched
                if self.partitions[item[0]][item[1]].alive
            }
        stats.rounds += rounds

    def _compute_batch(self, batch: list) -> list:
        if self.parallel and len(batch) > 64:
            with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                vectors = list(
                    pool.map(lambda item: self._recompute_vector(*item), batch)
                )
            return list(zip(batch, vectors))
        return [
            (item, self._recompute_vector(*item)) for item in batch
        ]
