"""Adaptive query planning: plan caching and estimator feedback.

The paper's online phase (Section 5.2.1) re-runs the SET-COVER planner
from scratch on every query and trusts the offline histograms forever.
For serving workloads both are wasted work: real traffic repeats query
shapes, and live updates (:mod:`repro.delta`) drift the histograms away
from the graph until the next compaction. :class:`QueryPlanner` closes
both gaps per engine:

* **Plan caching** — chosen :class:`~repro.query.decompose.Decomposition`
  plans are memoized in the same LRU machinery the serving layer uses
  (:class:`~repro.service.cache.ResultCache`), keyed by the query's
  *canonical* form (rename-invariant), the milli-rounded threshold, the
  strategy and the engine's ``graph_version`` — so structurally
  identical queries share one plan, thresholds inside the same
  milli-bucket share one plan, and every applied mutation batch
  invalidates plans versionlessly (stale keys age out of the LRU).
  Cached plans are stored in canonical *position* space and rehydrated
  onto the concrete query's node ids through
  :meth:`~repro.query.query_graph.QueryGraph.canonical_order`.
* **Estimator feedback** — after an evaluation, the observed
  per-sequence lookup cardinalities (the raw index counts the candidate
  stage already produces) are compared against the histogram estimates
  and folded into an :class:`EstimatorFeedback` table of multiplicative
  corrections, so post-delta estimate drift self-heals without a
  rebuild; compaction trues the histograms up and resets the table.

Any valid decomposition yields the same matches — planning affects cost
only — so cache hits, exact plans and feedback-corrected plans are all
interchangeable for correctness (the differential harness asserts it).
"""

from __future__ import annotations

import threading

from dataclasses import dataclass

from repro.index.protocol import canonical_sequence
from repro.obs.metrics import get_registry
from repro.query.decompose import Decomposition, QueryPath, decompose_query
from repro.query.query_graph import QueryGraph

_PLAN_HITS = get_registry().counter("repro_plan_cache_hits_total")
_PLAN_MISSES = get_registry().counter("repro_plan_cache_misses_total")


def plan_key(
    query: QueryGraph,
    alpha: float,
    strategy: str,
    seed,
    graph_version: int,
    max_length: int,
    use_feedback: bool = True,
) -> tuple:
    """Canonical cache key of one planning request.

    Alpha is milli-rounded with the index's one rounding rule
    (:func:`repro.index.builder._milli`): a decomposition's validity
    does not depend on the threshold at all, and its cost model only
    meaningfully shifts across bucket boundaries, so thresholds inside
    one milli-bucket deliberately share a plan. ``seed`` participates
    only for the random strategy (a seeded shuffle is deterministic and
    therefore cacheable). ``use_feedback`` participates because the
    two estimator settings are different cost models — a plan costed
    with corrections must not answer a request that asked for raw
    histogram estimates (or vice versa).
    """
    from repro.index.builder import _milli

    return (
        query.canonical_form(),
        _milli(alpha),
        strategy,
        seed if strategy == "random" else None,
        int(graph_version),
        int(max_length),
        bool(use_feedback),
    )


def _alpha_milli(alpha: float) -> int:
    """Milli-rounded threshold (the index's one rounding rule)."""
    from repro.index.builder import _milli

    return _milli(alpha)


@dataclass(frozen=True)
class PlanInfo:
    """Provenance of one chosen decomposition.

    ``source`` is ``"cache"`` for a plan-cache hit, otherwise the
    strategy that actually ran (``"greedy"``, ``"exact"`` or
    ``"random"``; a cutoff fallback from exact reports ``"greedy"``).
    """

    strategy: str
    source: str
    cached: bool
    estimated_cost: float


class EstimatorFeedback:
    """Per-(sequence, threshold) corrections learned from execution.

    For every (canonical label sequence, milli-rounded alpha) pair the
    table keeps an exponentially weighted estimate of
    ``observed / estimated`` — the factor by which the offline
    histogram misjudges the live graph. Keying on the milli-threshold
    (the same discipline as the plan cache and the overlay's
    stale-count memos) keeps a drift ratio observed at one threshold —
    where add-one smoothing on tiny counts distorts most — from
    corrupting estimates at thresholds where the histogram is
    accurate. Corrections are add-one smoothed (so empty lookups stay
    finite) and clamped to ``[1/max_correction, max_correction]``; a
    pair never observed corrects by exactly 1.0.
    """

    def __init__(self, decay: float = 0.5, max_correction: float = 64.0) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if max_correction < 1.0:
            raise ValueError(
                f"max_correction must be >= 1, got {max_correction}"
            )
        self.decay = float(decay)
        self.max_correction = float(max_correction)
        self._corrections: dict = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def correction(self, canonical_seq: tuple, alpha: float) -> float:
        """Current multiplicative correction for one (sequence, alpha)."""
        with self._lock:
            return self._corrections.get(
                (canonical_seq, _alpha_milli(alpha)), 1.0
            )

    def observe(self, canonical_seq: tuple, alpha: float,
                estimated: float, observed: int) -> float:
        """Fold one estimate-vs-observed pair in; returns the new factor."""
        ratio = (float(observed) + 1.0) / (max(estimated, 0.0) + 1.0)
        ratio = min(max(ratio, 1.0 / self.max_correction), self.max_correction)
        key = (canonical_seq, _alpha_milli(alpha))
        with self._lock:
            previous = self._corrections.get(key, 1.0)
            updated = (1.0 - self.decay) * previous + self.decay * ratio
            self._corrections[key] = updated
        return updated

    def reset(self) -> None:
        """Forget every correction (e.g. after compaction trues up)."""
        with self._lock:
            self._corrections.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._corrections)


class QueryPlanner:
    """Per-engine planning subsystem: cache, strategies, feedback.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.query.engine.QueryEngine`; supplies
        the estimator (its index), the ``graph_version`` the cache keys
        mix in, and ``max_length``.
    cache_size:
        Plan-cache capacity in entries; 0 disables caching entirely.
    feedback:
        Optional pre-built :class:`EstimatorFeedback` (tests inject
        tuned decay/clamps; the default is shared-nothing per engine).
    """

    def __init__(self, engine, cache_size: int = 512, feedback=None) -> None:
        # Imported lazily: repro.service imports repro.query.engine,
        # which imports this module — a module-level import here would
        # close the cycle while repro.query.engine is half-initialized.
        from repro.service.cache import ResultCache

        self.engine = engine
        self.cache = ResultCache(cache_size)
        self.feedback = feedback if feedback is not None else EstimatorFeedback()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        #: Objects with ``record_plan_hit``/``record_plan_miss`` —
        #: :class:`~repro.service.stats.ServiceStats` registers itself
        #: so serving dashboards see planner behaviour.
        self.listeners: list = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimator(self, use_feedback: bool = True):
        """The cost-model estimator: index histograms × feedback."""
        base = self.engine.index.estimate_cardinality
        if not use_feedback:
            return base
        feedback = self.feedback

        def estimate(label_seq, alpha):
            canonical = canonical_sequence(tuple(label_seq))
            return base(label_seq, alpha) * feedback.correction(
                canonical, alpha
            )

        return estimate

    def observe(self, query: QueryGraph, decomposition, alpha: float,
                raw_counts: dict) -> dict:
        """Close the loop after one evaluation.

        ``raw_counts`` maps partition index to the observed raw lookup
        cardinality (pre-context-pruning, exactly what
        ``estimate_cardinality`` predicts). Returns ``{partition:
        (corrected estimate, observed)}`` for provenance reporting;
        below-beta thresholds are skipped — those lookups bypass the
        index, so the histogram was never consulted.
        """
        index = self.engine.index
        if alpha < index.beta:
            return {}
        observations: dict = {}
        for i, path in enumerate(decomposition.paths):
            observed = raw_counts.get(i)
            if observed is None:
                continue
            label_seq = query.label_sequence(path.nodes)
            canonical = canonical_sequence(label_seq)
            base = index.estimate_cardinality(label_seq, alpha)
            corrected = base * self.feedback.correction(canonical, alpha)
            # Corrections always learn against the *base* estimate, so
            # successive observations converge instead of compounding.
            self.feedback.observe(canonical, alpha, base, observed)
            observations[i] = (corrected, observed)
        return observations

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, query: QueryGraph, alpha: float, options) -> tuple:
        """Choose a decomposition; returns ``(decomposition, PlanInfo)``.

        Consults the plan cache first (unseeded random plans are never
        cached — they are nondeterministic by contract); on a miss the
        requested strategy runs over the feedback-corrected estimator
        and the result is published for the next structurally identical
        query.
        """
        strategy = options.decomposition
        use_feedback = getattr(options, "use_estimator_feedback", True)
        cacheable = (
            getattr(options, "use_plan_cache", True)
            and self.cache.capacity > 0
            and (strategy != "random" or options.seed is not None)
        )
        key = None
        if cacheable:
            key = plan_key(
                query,
                alpha,
                strategy,
                options.seed,
                getattr(self.engine, "graph_version", 0),
                self.engine.max_length,
                use_feedback,
            )
            entry = self.cache.get(key)
            if entry is not None:
                with self._lock:
                    self.hits += 1
                _PLAN_HITS.inc()
                for listener in self.listeners:
                    listener.record_plan_hit()
                decomposition = self._rehydrate(query, entry)
                return decomposition, PlanInfo(
                    strategy=strategy,
                    source="cache",
                    cached=True,
                    estimated_cost=decomposition.estimated_cost,
                )
        with self._lock:
            self.misses += 1
        _PLAN_MISSES.inc()
        for listener in self.listeners:
            listener.record_plan_miss()
        decomposition = decompose_query(
            query,
            estimator=self.estimator(use_feedback),
            alpha=alpha,
            max_length=self.engine.max_length,
            strategy=strategy,
            seed=options.seed,
        )
        if key is not None:
            self.cache.put(key, self._dehydrate(query, decomposition))
        return decomposition, PlanInfo(
            strategy=strategy,
            source=decomposition.strategy_used,
            cached=False,
            estimated_cost=decomposition.estimated_cost,
        )

    @staticmethod
    def _dehydrate(query: QueryGraph, decomposition: Decomposition) -> tuple:
        """Encode a plan in canonical position space (rename-invariant)."""
        position = {
            node: i for i, node in enumerate(query.canonical_order())
        }
        paths = tuple(
            tuple(position[node] for node in path.nodes)
            for path in decomposition.paths
        )
        return (
            paths,
            decomposition.estimated_cost,
            decomposition.strategy_used,
        )

    @staticmethod
    def _rehydrate(query: QueryGraph, entry: tuple) -> Decomposition:
        """Instantiate a cached position-space plan onto ``query``.

        The cache key contains the canonical form, so any query that
        hits shares it with the plan's original query; equal canonical
        forms make position ``i`` of both canonical orders isomorphic
        images of each other, and the rebuilt decomposition is exactly
        the original plan with nodes renamed.
        """
        positions, estimated_cost, strategy_used = entry
        order = query.canonical_order()
        paths = [
            QueryPath(tuple(order[p] for p in path)) for path in positions
        ]
        return Decomposition(
            query=query,
            paths=paths,
            estimated_cost=estimated_cost,
            strategy_used=strategy_used,
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every cached plan and learned correction.

        Not needed for live updates — ``graph_version`` re-keys plans
        on its own — but compaction trues the histograms up, so the
        engine calls this to let estimates restart from exact.
        """
        self.cache.clear()
        self.feedback.reset()

    def stats_snapshot(self) -> dict:
        """Planner counters for the serving stats surface.

        Includes the engine's link-structure cache counters
        (:class:`~repro.query.links.LinkStructureCache`) — the planner
        snapshot is the one per-engine cache surface the serving layer
        merges, so link-cache behaviour rides the same path.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        snapshot = {
            "plan_cache_size": len(self.cache),
            "plan_cache_capacity": self.cache.capacity,
            "plan_cache_hits": hits,
            "plan_cache_misses": misses,
            "feedback_sequences": len(self.feedback),
        }
        link_cache = getattr(self.engine, "link_cache", None)
        if link_cache is not None:
            snapshot.update(link_cache.stats_snapshot())
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            hits, misses = self.hits, self.misses
        return (
            f"QueryPlanner(cache={len(self.cache)}/{self.cache.capacity}, "
            f"hits={hits}, misses={misses})"
        )
