"""Query serving — amortizing one offline phase over many online queries.

The paper's architecture is a serving system in disguise: an expensive
offline phase (PEG construction + context-aware path index) and a cheap
online phase. This package supplies the serving layer the split calls
for:

* :class:`~repro.service.service.QueryService` — a shared, immutable
  engine behind a worker pool, with LRU result caching, single-flight
  deduplication of identical concurrent requests, and grouped batch
  submission (:meth:`~repro.service.service.QueryService.submit_batch`)
  that evaluates a whole batch through
  :meth:`~repro.query.engine.QueryEngine.query_batch` so candidate
  label sequences shared across the batch are fetched from the
  (possibly sharded) index store once,
* :class:`~repro.service.cache.ResultCache` — the thread-safe LRU
  keyed by canonical query signatures,
* :class:`~repro.service.stats.ServiceStats` — hits/misses, dedups,
  evictions, in-flight gauge, p50/p95 latency,
* warm-start snapshots via
  :meth:`~repro.service.service.QueryService.snapshot` and
  :meth:`~repro.service.service.QueryService.from_snapshot`, built on
  :mod:`repro.index.bundle`.

Worker pool vs. intra-query parallelism
---------------------------------------
The service parallelizes *across* requests (``num_workers`` evaluation
threads), while :class:`~repro.query.engine.QueryOptions` can also
parallelize *within* one request: ``parallel_reduction=True`` fans the
k-partite search-space reduction out over ``num_threads`` threads. The
two multiply — ``num_workers=8`` with ``num_threads=4`` can run 32
threads during reduction-heavy phases. For a loaded service prefer
inter-query parallelism (``parallel_reduction=False``, the default):
throughput comes from concurrent requests, and oversubscription only
adds scheduling jitter to tail latency. Reserve
``parallel_reduction=True``/``num_threads`` for a lightly loaded
service that must minimize the latency of individual large queries.
Neither knob changes results, so the result cache deliberately ignores
both when forming its key (see
:func:`~repro.service.service.request_key`).
"""

from repro.service.cache import ResultCache
from repro.service.service import QueryService, request_key
from repro.service.stats import ServiceStats

__all__ = [
    "QueryService",
    "ResultCache",
    "ServiceStats",
    "request_key",
]
