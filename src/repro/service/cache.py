"""Thread-safe LRU cache for query results.

Keys are canonical request signatures (query canonical form + the
result-relevant :class:`~repro.query.engine.QueryOptions` fields +
alpha), so two structurally identical queries written with different
node ids share one entry. Values are whatever the service stores —
:class:`~repro.query.engine.QueryResult` objects, treated as immutable
once published.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class ResultCache:
    """Bounded LRU mapping with hit/miss/eviction accounting hooks.

    Parameters
    ----------
    capacity:
        Maximum number of entries; ``0`` disables caching entirely
        (every :meth:`get` misses, every :meth:`put` is dropped).
    on_evict:
        Optional callback ``(count) -> None`` invoked outside the lock
        after entries are evicted (the service wires this to
        :meth:`~repro.service.stats.ServiceStats.record_eviction`).
    """

    def __init__(self, capacity: int = 256, on_evict=None) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._on_evict = on_evict

    def get(self, key):
        """The cached value for ``key`` (refreshing recency), or ``None``."""
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        """Insert/replace ``key``, evicting least-recently-used overflow."""
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted += 1
        if evicted and self._on_evict is not None:
            self._on_evict(evicted)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop every entry (not counted as evictions)."""
        with self._lock:
            self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache(size={len(self)}, capacity={self.capacity})"
