"""Serving-layer benchmark core: latency and throughput measurements.

Shared by the ``repro bench-serve`` CLI subcommand and the
``benchmarks/bench_service_throughput.py`` pytest module. Three
measurements, each isolating one serving feature:

* **cache-hit latency** — the same query cold (first evaluation) vs.
  from the result cache; the hit path is a canonical-signature lookup
  and comes back orders of magnitude faster;
* **worker scaling** — a mixed workload of distinct queries pushed
  through 1 vs. N workers with caching disabled. The pool is warmed
  (workers spawned, engines loaded) before the clock starts so the
  measurement is steady-state serving, not process startup. True
  scaling needs real CPUs: on multi-core hosts the N-worker run uses
  the process pool (workers warm-start from the snapshot); on a
  single-core host the ratio hovers around 1.0 by physics, not by
  fault of the pool;
* **serving throughput** — the distinct workload repeated for several
  rounds (fresh node ids each round, arriving wave after wave, the
  way real repeated traffic does) through a full-featured service
  (cache + single-flight) vs. the same rounds with caching disabled.
  Rounds are drained one at a time so the cached run genuinely hits
  the cache rather than merely deduplicating in-flight work.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro.datasets import SyntheticConfig, generate_synthetic_pgd
from repro.datasets.queries import random_query
from repro.peg import build_peg
from repro.service.service import QueryService


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ServeBenchReport:
    """Everything one `bench-serve` run measured."""

    graph_references: int = 0
    cpus: int = 1
    cold_seconds: float = 0.0
    hit_seconds: float = 0.0
    hit_speedup: float = 0.0
    single_worker_qps: float = 0.0
    multi_worker_qps: float = 0.0
    multi_workers: int = 1
    scaling_executor: str = "thread"
    cached_qps: float = 0.0
    uncached_qps: float = 0.0
    stats: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"serving benchmark ({self.graph_references} references, "
            f"{self.cpus} cpu(s))",
            "",
            "cache-hit latency",
            f"  cold evaluation     {self.cold_seconds * 1e3:10.3f} ms",
            f"  cache hit           {self.hit_seconds * 1e3:10.3f} ms",
            f"  speedup             {self.hit_speedup:10.1f}x",
            "",
            f"worker scaling (cache off, {self.scaling_executor} pool)",
            f"  1 worker            {self.single_worker_qps:10.1f} qps",
            f"  {self.multi_workers} workers"
            f"           {self.multi_worker_qps:10.1f} qps",
            "",
            "repeated workload (cache + single-flight vs. no cache)",
            f"  cached service      {self.cached_qps:10.1f} qps",
            f"  uncached service    {self.uncached_qps:10.1f} qps",
        ]
        if self.stats:
            lines += ["", "final service stats"]
            for key in sorted(self.stats):
                lines.append(f"  {key:20s}{self.stats[key]}")
        return "\n".join(lines)


def mixed_workload(
    sigma, num_distinct: int = 6, copies: int = 4, seed: int = 0
) -> list:
    """Distinct random queries, each duplicated ``copies`` times under
    fresh node ids (so only canonicalization can equate them), shuffled.
    """
    shuffler = random.Random(seed)
    sigma = sorted(sigma)
    workload = []
    for i in range(num_distinct):
        shape = random.Random(seed * 1009 + i)
        num_nodes = 3 + shape.randrange(2)
        num_edges = num_nodes - 1 + shape.randrange(2)
        for copy in range(copies):
            query = random_query(
                num_nodes, num_edges, sigma, seed=seed * 1009 + i
            )
            workload.append(_rename_nodes(query, prefix=f"c{copy}_"))
    shuffler.shuffle(workload)
    return workload


def _rename_nodes(query, prefix: str):
    from repro.query.query_graph import QueryGraph

    mapping = {node: f"{prefix}{node}" for node in query.nodes}
    labels = {mapping[node]: query.label(node) for node in query.nodes}
    edges = [
        tuple(mapping[node] for node in edge) for edge in query.edges
    ]
    return QueryGraph(labels, edges)


def _drain(service: QueryService, workload, alpha: float) -> float:
    """Submit the whole workload concurrently; seconds to full drain."""
    start = time.perf_counter()
    futures = [service.submit(query, alpha) for query in workload]
    for future in futures:
        future.result()
    return time.perf_counter() - start


def run_serve_benchmark(
    snapshot_dir: str,
    num_references: int = 120,
    alpha: float = 0.5,
    max_length: int = 2,
    beta: float = 0.1,
    num_distinct: int = 6,
    copies: int = 4,
    multi_workers: int = 4,
    seed: int = 7,
) -> ServeBenchReport:
    """Run all three measurements; ``snapshot_dir`` hosts the bundle."""
    report = ServeBenchReport(
        graph_references=num_references, cpus=available_cpus()
    )
    peg = build_peg(
        generate_synthetic_pgd(
            SyntheticConfig(num_references=num_references, seed=seed)
        )
    )
    distinct = mixed_workload(
        peg.sigma, num_distinct=num_distinct, copies=1, seed=seed
    )
    scaling = mixed_workload(
        peg.sigma, num_distinct=num_distinct * 4, copies=1, seed=seed + 1
    )
    rounds = [
        [_rename_nodes(query, f"r{r}_") for query in distinct]
        for r in range(copies)
    ]

    # -- cache-hit latency (and the snapshot every later stage reuses) --
    service = QueryService.open(
        peg,
        snapshot_dir,
        max_length=max_length,
        beta=beta,
        num_workers=1,
    )
    cold = hit = 0.0
    for query in distinct:
        start = time.perf_counter()
        service.query(query, alpha)
        cold += time.perf_counter() - start
        start = time.perf_counter()
        service.query(query, alpha)
        hit += time.perf_counter() - start
    report.cold_seconds = cold / len(distinct)
    report.hit_seconds = hit / len(distinct)
    report.hit_speedup = (
        report.cold_seconds / report.hit_seconds
        if report.hit_seconds > 0 else float("inf")
    )
    service.close()

    # -- worker scaling, caching disabled --------------------------------
    report.multi_workers = multi_workers
    report.scaling_executor = "process" if report.cpus > 1 else "thread"
    for workers in (1, multi_workers):
        service = QueryService.from_snapshot(
            peg,
            snapshot_dir,
            num_workers=workers,
            cache_size=0,
            executor=report.scaling_executor if workers > 1 else "thread",
        )
        # Warm the pool outside the clock: one concurrent request per
        # worker spawns every process and loads its engine.
        service.query_many(distinct[:workers], alpha)
        elapsed = _drain(service, scaling, alpha)
        qps = len(scaling) / elapsed if elapsed > 0 else float("inf")
        if workers == 1:
            report.single_worker_qps = qps
        else:
            report.multi_worker_qps = qps
        service.close()

    # -- repeated rounds: full service vs. cache disabled ----------------
    total = sum(len(round_workload) for round_workload in rounds)
    for cache_size in (256, 0):
        service = QueryService.from_snapshot(
            peg,
            snapshot_dir,
            num_workers=multi_workers,
            cache_size=cache_size,
        )
        start = time.perf_counter()
        for round_workload in rounds:
            _drain(service, round_workload, alpha)
        elapsed = time.perf_counter() - start
        qps = total / elapsed if elapsed > 0 else float("inf")
        if cache_size:
            report.cached_qps = qps
            report.stats = service.stats_snapshot()
        else:
            report.uncached_qps = qps
        service.close()

    return report
