"""Serving metrics: counters plus a bounded latency reservoir.

:class:`ServiceStats` is the single mutation point for everything the
service observes — cache hits/misses, single-flight deduplications,
evictions, errors, in-flight gauge — and keeps the most recent request
latencies in a bounded window from which it derives p50/p95 (quantiles
over a sliding window, the standard serving-metrics compromise between
exactness and unbounded memory). Successful and failed requests are
tracked in separate windows so overload pathologies show up in the
error quantiles instead of silently vanishing from the latency picture.

Every recording also feeds the process-wide metrics registry
(:mod:`repro.obs.metrics`) under ``repro_service_*`` series — outcome
labels on the request counter and the latency histograms — so the
service's counters and the engine's stage metrics export through one
``snapshot()`` / Prometheus surface.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.metrics import get_registry


def _quantile(sorted_values: list, q: float) -> float:
    """Nearest-rank quantile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class ServiceStats:
    """Thread-safe counters and latency quantiles for a query service.

    Parameters
    ----------
    latency_window:
        Number of most recent request latencies retained for the
        p50/p95 estimates (successful and failed requests each get a
        window of this size).
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` the counters
        mirror into; defaults to the process-wide registry. Tests
        inject private registries for isolation.
    """

    def __init__(self, latency_window: int = 1024, registry=None) -> None:
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=max(1, latency_window))  # guarded-by: _lock
        self._error_latencies: deque = deque(maxlen=max(1, latency_window))  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.deduplicated = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.in_flight = 0  # guarded-by: _lock
        #: Requests refused admission (load shedding, per-client caps,
        #: admission-pause timeouts). Rejected requests count toward
        #: ``requests`` but never toward ``completed``, so on a drained
        #: service ``requests == completed + rejected`` reconciles
        #: exactly.
        self.rejected = 0  # guarded-by: _lock
        #: Subset of ``rejected`` shed because a bounded queue was full.
        self.shed = 0  # guarded-by: _lock
        #: Requests whose deadline expired before a result was produced
        #: (informational; the request still completes as an error or,
        #: for a server-side late reply, as its eventual outcome).
        self.deadline_exceeded = 0  # guarded-by: _lock
        #: Deduplicated requests whose attached evaluation has resolved
        #: (each contributes to ``completed``).
        self.attached = 0  # guarded-by: _lock
        self.plan_hits = 0  # guarded-by: _lock
        self.plan_misses = 0  # guarded-by: _lock
        registry = registry if registry is not None else get_registry()
        self._m_requests = {
            outcome: registry.counter(
                "repro_service_requests_total", outcome=outcome
            )
            for outcome in ("hit", "miss", "dedup")
        }
        self._m_latency = {
            outcome: registry.histogram(
                "repro_service_request_seconds", outcome=outcome
            )
            for outcome in ("ok", "error")
        }
        self._m_queue_wait = registry.histogram(
            "repro_service_queue_wait_seconds"
        )
        self._m_in_flight = registry.gauge("repro_service_in_flight")
        self._m_evictions = registry.counter("repro_service_evictions_total")
        self._m_rejected = {
            kind: registry.counter(
                "repro_service_rejected_total", kind=kind
            )
            for kind in ("shed", "refused")
        }
        self._m_deadline = registry.counter(
            "repro_service_deadline_exceeded_total"
        )

    # -- recording -----------------------------------------------------

    def record_hit(self, seconds: float) -> None:
        """A request served straight from the result cache."""
        with self._lock:
            self.hits += 1
            self.completed += 1
            self._latencies.append(seconds)
        self._m_requests["hit"].inc()
        self._m_latency["ok"].observe(seconds)

    def record_miss(self) -> None:
        """A request that must be evaluated (enters the in-flight set)."""
        with self._lock:
            self.misses += 1
            self.in_flight += 1
        self._m_requests["miss"].inc()
        self._m_in_flight.inc()

    def record_dedup(self) -> None:
        """A request attached to an identical in-flight evaluation.

        Completion is counted separately when the attached evaluation
        resolves (:meth:`record_attached_done`), so ``requests`` and
        ``completed`` converge on a drained service.
        """
        with self._lock:
            self.deduplicated += 1
        self._m_requests["dedup"].inc()

    def record_queue_wait(self, seconds: float) -> None:
        """Time one evaluation spent queued before a worker picked it up."""
        self._m_queue_wait.observe(seconds)

    def record_done(self, seconds: float, error: bool = False) -> None:
        """An evaluated request finished (successfully or not).

        Failed requests keep their latency too — in a separate window
        feeding the ``error_latency_*`` quantiles — so overload
        pathologies (errors that are also slow) stay visible.
        """
        with self._lock:
            self.in_flight -= 1
            self.completed += 1
            if error:
                self.errors += 1
                self._error_latencies.append(seconds)
            else:
                self._latencies.append(seconds)
        self._m_in_flight.dec()
        self._m_latency["error" if error else "ok"].observe(seconds)

    def record_attached_done(self, seconds: float, error: bool = False) -> None:
        """A deduplicated request's attached evaluation resolved.

        Counts the follower's completion and wall-clock latency;
        ``errors`` is deliberately *not* incremented — it counts failed
        evaluations, and the leader already recorded the failure.
        """
        with self._lock:
            self.completed += 1
            self.attached += 1
            if error:
                self._error_latencies.append(seconds)
            else:
                self._latencies.append(seconds)
        self._m_latency["error" if error else "ok"].observe(seconds)

    def record_rejected(self, shed: bool = False) -> None:
        """A request was refused admission (never evaluated).

        ``shed=True`` marks queue-overflow load shedding; ``False``
        covers per-client fairness caps, drain-policy rejections and
        admission-pause timeouts.
        """
        with self._lock:
            self.rejected += 1
            if shed:
                self.shed += 1
        self._m_rejected["shed" if shed else "refused"].inc()

    def record_deadline_exceeded(self) -> None:
        """A request's deadline expired before its result was produced."""
        with self._lock:
            self.deadline_exceeded += 1
        self._m_deadline.inc()

    def record_eviction(self, count: int = 1) -> None:
        """``count`` entries were evicted from the result cache."""
        with self._lock:
            self.evictions += count
        self._m_evictions.inc(count)

    # The service registers this object as a listener on the engine's
    # :class:`~repro.query.plan.QueryPlanner`, so decomposition reuse
    # shows up next to the result-cache counters it complements (a
    # result-cache miss that still plan-cache-hits skips the planning
    # stage of its evaluation).

    def record_plan_hit(self) -> None:
        """An evaluation reused a cached decomposition plan."""
        with self._lock:
            self.plan_hits += 1

    def record_plan_miss(self) -> None:
        """An evaluation had to run the decomposition planner."""
        with self._lock:
            self.plan_misses += 1

    # -- reading -------------------------------------------------------

    @property
    def requests(self) -> int:
        """Total requests observed (hits + misses + dedup + rejected).

        Rejected requests were refused admission, so on a drained
        service the counters reconcile exactly:
        ``requests == completed + rejected``.
        """
        with self._lock:
            return (
                self.hits + self.misses + self.deduplicated + self.rejected
            )

    def hit_rate(self) -> float:
        """Cache hit fraction over admitted requests (0 when idle).

        Rejected requests never reach the cache, so they are excluded
        from the denominator.
        """
        with self._lock:
            total = self.hits + self.misses + self.deduplicated
            return self.hits / total if total else 0.0

    def latency_quantiles(self) -> dict:
        """``{"p50": ..., "p95": ...}`` over successful requests, seconds."""
        with self._lock:
            ordered = sorted(self._latencies)
        return {
            "p50": _quantile(ordered, 0.50),
            "p95": _quantile(ordered, 0.95),
        }

    def snapshot(self) -> dict:
        """One consistent dict of every counter plus the quantiles."""
        with self._lock:
            ordered = sorted(self._latencies)
            error_ordered = sorted(self._error_latencies)
            snap = {
                "hits": self.hits,
                "misses": self.misses,
                "deduplicated": self.deduplicated,
                "attached": self.attached,
                "evictions": self.evictions,
                "errors": self.errors,
                "completed": self.completed,
                "in_flight": self.in_flight,
                "rejected": self.rejected,
                "shed": self.shed,
                "deadline_exceeded": self.deadline_exceeded,
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
            }
        snap["requests"] = (
            snap["hits"] + snap["misses"] + snap["deduplicated"]
            + snap["rejected"]
        )
        admitted = snap["hits"] + snap["misses"] + snap["deduplicated"]
        snap["hit_rate"] = snap["hits"] / admitted if admitted else 0.0
        snap["latency_p50"] = _quantile(ordered, 0.50)
        snap["latency_p95"] = _quantile(ordered, 0.95)
        snap["error_latency_p50"] = _quantile(error_ordered, 0.50)
        snap["error_latency_p95"] = _quantile(error_ordered, 0.95)
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            requests = (
                self.hits + self.misses + self.deduplicated + self.rejected
            )
            return (
                f"ServiceStats(requests={requests}, hits={self.hits}, "
                f"misses={self.misses}, in_flight={self.in_flight})"
            )
