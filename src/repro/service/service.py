"""The concurrent query service: worker pool, cache, single-flight.

:class:`QueryService` owns one immutable
:class:`~repro.query.engine.QueryEngine` (offline phase already done)
and serves many online queries against it:

* evaluations run on a ``ThreadPoolExecutor`` of ``num_workers``
  threads, so independent requests overlap;
* results are memoized in a :class:`~repro.service.cache.ResultCache`
  keyed by the *canonical* request signature — query graphs equal up to
  node renaming share one entry;
* identical concurrent requests are collapsed by single-flight
  deduplication: the first becomes the leader, later arrivals attach to
  the leader's future instead of re-evaluating;
* a batch of requests can be submitted as one grouped evaluation
  (:meth:`QueryService.submit_batch`), fetching candidate label
  sequences shared across the batch from the index store once;
* the offline phase can be snapshotted to disk and warm-started on the
  next process via :meth:`snapshot` / :meth:`from_snapshot` /
  :meth:`open`.
"""

from __future__ import annotations

import functools
import threading
import time
from concurrent.futures import (
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_SPAN, NULL_TRACER, use_span
from repro.peg.entity_graph import ProbabilisticEntityGraph
from repro.query.engine import QueryEngine, QueryOptions, QueryResult
from repro.query.query_graph import QueryGraph
from repro.service.cache import ResultCache
from repro.service.stats import ServiceStats
from repro.testing import faults
from repro.utils.errors import (
    DeadlineExceeded,
    QueryError,
    ServiceError,
    ServiceUnavailable,
)

#: Engine of the current process-pool worker (set by the initializer).
_WORKER_ENGINE: QueryEngine | None = None


def _process_worker_init(peg, snapshot_dir: str) -> None:
    """Warm-start one pool worker from the service's snapshot bundle."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = QueryEngine.from_saved(peg, snapshot_dir)


def _process_worker_query(query, alpha, options, deadline=None):
    """Evaluate one request on the worker's warm-started engine."""
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceeded(
            "deadline expired before the evaluation started"
        )
    return _WORKER_ENGINE.query(query, alpha, options)


def _process_worker_query_batch(requests, options):
    """Evaluate one grouped batch on the worker's warm-started engine."""
    return _WORKER_ENGINE.query_batch(requests, options)


#: :class:`QueryOptions` fields deliberately excluded from
#: :func:`request_key`. Every field listed here must be *result-neutral*:
#: changing it may change how a query is executed (which backend, how
#: many threads, whether caches or tracing are used) but never which
#: matches come back or their probabilities. The differential test
#: suites (``test_differential_links``, backend-equivalence tests) are
#: the runtime evidence; the ``cache-keys`` checker in
#: ``repro.analysis`` is the static gate — a new ``QueryOptions`` field
#: must either join the key below or be added here, and the linter
#: fails the build until one of the two happens.
RESULT_NEUTRAL_OPTIONS = frozenset(
    {
        "parallel_reduction",
        "num_threads",
        "reduction_backend",
        "link_backend",
        "use_link_cache",
        "trace",
    }
)


def request_key(
    query: QueryGraph,
    alpha: float,
    options: QueryOptions,
    graph_version: int = 0,
) -> tuple:
    """Canonical cache/dedup key of one request.

    Combines the query's canonical form (rename-invariant), alpha, the
    :class:`QueryOptions` fields that change the *result*, and the
    engine's ``graph_version`` — execution knobs
    (``parallel_reduction``, ``num_threads``) are deliberately excluded
    so the same logical query shares one entry regardless of how it is
    executed. The planner knobs (``use_plan_cache``,
    ``use_estimator_feedback``) participate: they never change the
    matches, but they can change the chosen decomposition and hence
    the per-stage statistics stored in the result. The graph version
    makes cache invalidation versioned instead of explicit: every
    applied mutation batch bumps it, so entries computed against the
    pre-mutation graph simply stop being addressable and age out of
    the LRU.
    """
    return (
        query.canonical_form(),
        float(alpha),
        options.decomposition,
        options.use_context_pruning,
        options.use_structure_reduction,
        options.use_upperbound_reduction,
        options.seed,
        options.use_plan_cache,
        options.use_estimator_feedback,
        int(graph_version),
    )


class QueryService:
    """Serves pattern-matching queries concurrently over one engine.

    Parameters
    ----------
    engine:
        The shared engine. Treated as immutable: the service never
        mutates it, and all stores reached through it must be safe for
        concurrent readers (both bundled stores are).
    num_workers:
        Evaluation threads (>= 1).
    cache_size:
        Result-cache capacity in entries; 0 disables caching.
    default_options:
        Options applied when a request passes none.
    latency_window:
        Recent-latency reservoir size for the p50/p95 stats.
    executor:
        ``"thread"`` (default) evaluates on a thread pool — cheap, and
        right for cache-heavy or I/O-bound serving. ``"process"``
        evaluates on a process pool whose workers each warm-start their
        own engine from ``snapshot_dir``, buying true CPU parallelism
        for compute-bound workloads on multi-core hosts (requests and
        results cross a pickling boundary).
    snapshot_dir:
        Offline-bundle directory; required for ``executor="process"``.
    tracer:
        A :class:`~repro.obs.trace.Tracer` recording one span tree per
        request (admission outcome, queue wait, and — on the thread
        executor — the engine's stage spans nested beneath). Defaults
        to the no-op tracer, which costs one attribute check per
        request. Process-pool evaluations cannot carry spans across the
        pickling boundary; their request spans record admission and
        outcome only.
    max_admission_wait:
        Upper bound, in seconds, a request may block in admission while
        a live update (:meth:`apply_updates`) holds the gate. Past it
        the request fails with
        :class:`~repro.utils.errors.ServiceUnavailable` instead of
        blocking indefinitely — callers always get an answer or a clean
        error, never a hang.
    """

    def __init__(
        self,
        engine: QueryEngine,
        num_workers: int = 4,
        cache_size: int = 256,
        default_options: QueryOptions | None = None,
        latency_window: int = 1024,
        executor: str = "thread",
        snapshot_dir: str | None = None,
        tracer=None,
        max_admission_wait: float = 5.0,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        if executor not in ("thread", "process"):
            raise ServiceError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.engine = engine
        self.num_workers = int(num_workers)
        self.default_options = default_options or QueryOptions()
        self.executor_kind = executor
        self.snapshot_dir = snapshot_dir
        if max_admission_wait <= 0:
            raise ServiceError(
                f"max_admission_wait must be > 0, got {max_admission_wait}"
            )
        self.max_admission_wait = float(max_admission_wait)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics_registry = get_registry()
        self.stats = ServiceStats(latency_window=latency_window)
        self.cache = ResultCache(
            cache_size, on_evict=self.stats.record_eviction
        )
        # Surface the engine planner's cache behaviour in this
        # service's stats (engine-like test doubles may carry none;
        # process-pool workers plan in their own processes, so the
        # counters stay zero there).
        planner = getattr(engine, "planner", None)
        if planner is not None and self.stats not in planner.listeners:
            planner.listeners.append(self.stats)
        self.warm_started = False
        if executor == "process":
            if snapshot_dir is None:
                raise ServiceError(
                    "executor='process' needs snapshot_dir: pool workers "
                    "warm-start their engines from the snapshot bundle"
                )
            self._executor: ThreadPoolExecutor | ProcessPoolExecutor = (
                ProcessPoolExecutor(
                    max_workers=self.num_workers,
                    initializer=_process_worker_init,
                    initargs=(engine.peg, snapshot_dir),
                )
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="repro-serve"
            )
        self._inflight: dict = {}  # guarded-by: _gate
        self._gate = threading.Lock()
        #: Signalled when a mutation batch finishes; admissions wait on
        #: it so no evaluation overlaps graph surgery.
        self._apply_done = threading.Condition(self._gate)
        self._applying = False  # guarded-by: _gate
        #: Serializes whole apply_updates() calls against each other.
        self._apply_lock = threading.Lock()
        self._closed = False  # guarded-by: _gate

    # ------------------------------------------------------------------
    # Construction / warm start
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        peg: ProbabilisticEntityGraph,
        max_length: int = 3,
        beta: float = 0.1,
        gamma: float = 0.1,
        snapshot_dir: str | None = None,
        index_threads: int = 1,
        num_shards: int = 0,
        build_processes: int = 0,
        **service_kwargs,
    ) -> "QueryService":
        """Run the offline phase and wrap the engine in a service.

        When ``snapshot_dir`` is given the freshly built offline
        artifacts are persisted there immediately, ready for
        :meth:`from_snapshot` on the next process. ``num_shards`` >= 1
        builds a hash-sharded index instead of the monolithic one, and
        ``build_processes`` > 1 parallelizes that build on a process
        pool (the shard stores are then built directly inside
        ``snapshot_dir``, which is required in that case).
        """
        engine = QueryEngine(
            peg,
            max_length=max_length,
            beta=beta,
            gamma=gamma,
            index_threads=index_threads,
            num_shards=num_shards,
            shard_directory=snapshot_dir if num_shards else None,
            build_processes=build_processes,
        )
        if snapshot_dir is not None:
            engine.save_offline(snapshot_dir)
            service_kwargs.setdefault("snapshot_dir", snapshot_dir)
        return cls(engine, **service_kwargs)

    @classmethod
    def from_snapshot(
        cls,
        peg: ProbabilisticEntityGraph,
        directory: str,
        **service_kwargs,
    ) -> "QueryService":
        """Warm-start from a snapshot written by :meth:`snapshot`/:meth:`build`.

        Skips the offline phase entirely — the service is ready in the
        time it takes to reopen the disk store. The PEG must be the one
        the snapshot was built from.
        """
        service_kwargs.setdefault("snapshot_dir", directory)
        service = cls(QueryEngine.from_saved(peg, directory), **service_kwargs)
        service.warm_started = True
        return service

    @classmethod
    def open(
        cls,
        peg: ProbabilisticEntityGraph,
        snapshot_dir: str,
        max_length: int = 3,
        beta: float = 0.1,
        gamma: float = 0.1,
        index_threads: int = 1,
        num_shards: int = 0,
        build_processes: int = 0,
        **service_kwargs,
    ) -> "QueryService":
        """Warm-start from ``snapshot_dir`` if possible, else build into it.

        The one-call lifecycle: the first run pays for the offline phase
        and leaves a snapshot behind; every later run restores it
        (``service.warm_started`` tells which happened).

        On a warm start the build parameters (``max_length``, ``beta``,
        ``gamma``, ``index_threads``, ``num_shards``,
        ``build_processes``) are ignored — the snapshot's own
        parameters win; check ``engine.max_length`` /
        ``engine.index.beta`` after opening. Delete the snapshot
        directory to rebuild with different parameters.
        """
        from repro.utils.errors import IndexError_

        try:
            return cls.from_snapshot(peg, snapshot_dir, **service_kwargs)
        except IndexError_:
            return cls.build(
                peg,
                max_length=max_length,
                beta=beta,
                gamma=gamma,
                snapshot_dir=snapshot_dir,
                index_threads=index_threads,
                num_shards=num_shards,
                build_processes=build_processes,
                **service_kwargs,
            )

    def snapshot(self, directory: str) -> None:
        """Persist the engine's offline artifacts for later warm starts."""
        self.engine.save_offline(directory)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _admit(
        self,
        query: QueryGraph,
        alpha: float,
        options: QueryOptions,
        span=NULL_SPAN,
    ) -> tuple:
        """Resolve one request against the cache and in-flight registry.

        Returns ``(future, key)``: ``key`` is ``None`` when the future
        is already settled (cache hit) or attached to an in-flight
        evaluation (dedup); otherwise the request was registered
        in-flight under ``key`` and the caller owns evaluating it and
        completing the future (via :meth:`_finish` /
        :meth:`_finish_batch` / :meth:`_abort_submission`). The
        admission outcome is recorded on ``span`` here, where it is
        decided, so the attribute can never disagree with the stats.
        """
        start = time.perf_counter()
        with self._gate:
            # Admission is atomic with respect to apply_updates: the
            # whole resolve-key / cache-check / in-flight registration
            # happens under one gate hold, so a request is either
            # registered before an update's drain snapshot (and hence
            # drained) or admitted after the update completed (keyed
            # and evaluated against the post-update graph). Splitting
            # this into separate gate holds would let a request slip
            # between the drain snapshot and the graph surgery.
            #
            # The wait is bounded: a stuck or slow mutation batch must
            # not turn every submit into an indefinite block.
            wait_deadline = time.monotonic() + self.max_admission_wait
            while self._applying:
                remaining = wait_deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.record_rejected()
                    span.set("outcome", "unavailable")
                    raise ServiceUnavailable(
                        "admission paused by a live update for more than "
                        f"max_admission_wait={self.max_admission_wait}s"
                    )
                self._apply_done.wait(remaining)
            if self._closed:
                raise ServiceError("service is closed")
            # Engine-like test doubles may not carry a version; treat
            # them as frozen graphs.
            key = request_key(
                query, alpha, options,
                getattr(self.engine, "graph_version", 0),
            )
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.record_hit(time.perf_counter() - start)
                span.set("outcome", "cache")
                future: Future = Future()
                future.set_result(cached)
                return future, None
            inflight = self._inflight.get(key)
            if inflight is not None:
                self.stats.record_dedup()
                span.set("outcome", "dedup")
                # The follower's completion is recorded when the
                # leader's future resolves — including via close(),
                # which fails leftover futures — so ``requests`` and
                # ``completed`` converge on any drained service.
                inflight.add_done_callback(
                    functools.partial(self._finish_attached, start)
                )
                return inflight, None
            future = Future()
            self._inflight[key] = future
        self.stats.record_miss()
        span.set("outcome", "miss")
        return future, key

    def _abort_submission(self, key, future, start, exc) -> None:
        """Unwind one registered request after an executor rejection.

        close() can win the race after the in-flight registration: the
        entry must be unregistered so attached followers fail instead
        of hanging.
        """
        with self._gate:
            self._inflight.pop(key, None)
        self.stats.record_done(time.perf_counter() - start, error=True)
        future.set_exception(
            ServiceError(f"service is shutting down: {exc}")
        )

    def submit(
        self,
        query: QueryGraph,
        alpha: float,
        options: QueryOptions | None = None,
        deadline: float | None = None,
    ) -> Future:
        """Enqueue one request; returns a future of its ``QueryResult``.

        Cache hits resolve immediately; a request identical (up to node
        renaming) to one already in flight shares that evaluation's
        future instead of spawning another.

        ``deadline`` is an absolute ``time.monotonic()`` instant. A
        request still queued behind busy workers when it passes is
        never evaluated: its future resolves with
        :class:`~repro.utils.errors.DeadlineExceeded` the moment a
        worker picks it up, so expired requests cannot occupy
        evaluation capacity and their callers cannot hang. (A deadline
        cannot interrupt an evaluation already running; the network
        tier adds the watchdog that answers the client at the deadline
        regardless.)
        """
        with self._gate:
            if self._closed:
                raise ServiceError("service is closed")
        options = options or self.default_options
        span = self.tracer.span("request")
        span.begin()
        span.set("alpha", float(alpha))
        future, key = self._admit(query, alpha, options, span=span)
        if key is None:
            # Cache hit or dedup attach: the request's own lifecycle is
            # over even though an attached evaluation may still run.
            span.finish()
            return future
        start = time.perf_counter()
        try:
            if self.executor_kind == "process":
                # Spans cannot cross the pickling boundary; the worker
                # evaluates untraced and this request span keeps only
                # admission + outcome (queue wait is unmeasurable from
                # the worker side too).
                task = self._executor.submit(
                    _process_worker_query, query, alpha, options, deadline
                )
            else:
                task = self._executor.submit(
                    self._run_query, query, alpha, options, span, start,
                    deadline,
                )
        except RuntimeError as exc:
            self._abort_submission(key, future, start, exc)
            span.finish(error=True)
            return future
        task.add_done_callback(
            functools.partial(self._finish, key, future, start, span)
        )
        return future

    def _run_query(
        self, query, alpha, options, span, submitted, deadline=None
    ) -> QueryResult:
        """Worker-side wrapper of one evaluation.

        Records how long the task sat queued behind busy workers and
        re-attaches the request span on this worker thread, so the
        engine's stage spans nest under it across the pool boundary.
        Expired deadlines are detected here — after the queue wait,
        before any evaluation work — so a timed-out request resolves
        with a clean error instead of wasting a worker.
        """
        wait = time.perf_counter() - submitted
        self.stats.record_queue_wait(wait)
        if span.enabled:
            span.set("queue_wait_ms", round(wait * 1e3, 3))
        if deadline is not None and time.monotonic() >= deadline:
            self.stats.record_deadline_exceeded()
            raise DeadlineExceeded(
                f"deadline expired after {wait * 1e3:.1f} ms queued, "
                "before the evaluation started"
            )
        faults.check("service.worker")
        with use_span(span):
            return self.engine.query(query, alpha, options)

    def query(
        self,
        query: QueryGraph,
        alpha: float,
        options: QueryOptions | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> QueryResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(query, alpha, options, deadline=deadline).result(
            timeout
        )

    def query_many(
        self,
        queries,
        alpha: float,
        options: QueryOptions | None = None,
    ) -> list:
        """Evaluate a batch concurrently; results in request order.

        Each query becomes its own evaluation task (maximum worker
        parallelism). For workloads whose queries share candidate label
        sequences, :meth:`submit_batch` trades that parallelism for
        shared index fetches.
        """
        futures = [self.submit(q, alpha, options) for q in queries]
        return [future.result() for future in futures]

    def submit_batch(
        self,
        requests,
        options: QueryOptions | None = None,
    ) -> list:
        """Enqueue ``(query, alpha)`` requests as one grouped evaluation.

        Returns one future per request, in request order. Cache hits
        resolve immediately and requests identical (up to node renaming)
        to in-flight evaluations — including earlier entries of the same
        batch — attach to the existing future; only the residual misses
        are evaluated, together, through
        :meth:`repro.query.engine.QueryEngine.query_batch`, so candidate
        label sequences shared across the batch are fetched from the
        (possibly sharded) index store once instead of once per query.

        The grouped evaluation runs as a single task on one worker:
        batching trades per-query worker parallelism for shared fetches,
        which wins when the store is the bottleneck (disk-backed or
        sharded indexes, I/O-bound serving) and mixed traffic keeps the
        remaining workers busy.

        A malformed request (invalid threshold, broken query) resolves
        to its own error future without joining the grouped evaluation
        — one bad request must not deny results to the rest of the
        batch, and nothing is registered in-flight for it.
        """
        with self._gate:
            if self._closed:
                raise ServiceError("service is closed")
        options = options or self.default_options
        futures: list = []
        to_eval: list = []
        for query, alpha in requests:
            try:
                if not 0.0 < alpha <= 1.0:
                    raise QueryError(f"alpha must be in (0, 1], got {alpha}")
                # _admit registers in-flight only after request_key
                # succeeds, so a malformed request caught here has
                # nothing to unwind. Dedup also covers duplicates
                # earlier in this same batch.
                future, key = self._admit(query, alpha, options)
            except ServiceError:
                # The service closed mid-batch; the remaining requests
                # cannot be admitted at all.
                raise
            except Exception as exc:
                future = Future()
                future.set_exception(
                    exc if isinstance(exc, QueryError) else QueryError(
                        f"malformed batch request: {exc}"
                    )
                )
                futures.append(future)
                continue
            futures.append(future)
            if key is not None:
                to_eval.append((key, future, query, alpha))
        if not to_eval:
            return futures
        batch = [(query, alpha) for _, _, query, alpha in to_eval]
        start = time.perf_counter()
        try:
            if self.executor_kind == "process":
                task = self._executor.submit(
                    _process_worker_query_batch, batch, options
                )
            else:
                task = self._executor.submit(
                    self._run_query_batch, batch, options, start
                )
        except RuntimeError as exc:
            for key, future, _, _ in to_eval:
                self._abort_submission(key, future, start, exc)
            return futures
        task.add_done_callback(
            functools.partial(
                self._finish_batch,
                [(key, future) for key, future, _, _ in to_eval],
                start,
            )
        )
        return futures

    def _run_query_batch(self, batch, options, submitted) -> list:
        """Worker-side wrapper of one grouped evaluation (queue wait only;
        the engine's ``query_batch`` builds its own span structure when a
        trace is requested)."""
        self.stats.record_queue_wait(time.perf_counter() - submitted)
        return self.engine.query_batch(batch, options)

    def query_batch(
        self,
        requests,
        options: QueryOptions | None = None,
        timeout: float | None = None,
    ) -> list:
        """Blocking convenience wrapper around :meth:`submit_batch`."""
        futures = self.submit_batch(requests, options)
        return [future.result(timeout) for future in futures]

    @staticmethod
    def _task_outcome(task) -> tuple:
        """``(exception, result)`` of a finished task, cancellation-safe.

        ``close(wait=False)`` cancels queued tasks; their done-callbacks
        still run, but ``task.exception()`` would itself raise
        ``CancelledError`` — which, uncaught inside a callback, would
        leave the request future unresolved and its waiters hanging.
        """
        if task.cancelled():
            return ServiceError("service closed before the request ran"), None
        exc = task.exception()
        if exc is not None:
            return exc, None
        return None, task.result()

    @staticmethod
    def _resolve(future, exc=None, result=None) -> None:
        """Complete a request future unless close() already failed it."""
        try:
            if future.done():
                return
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)
        except InvalidStateError:  # lost the race against close()
            pass

    def _finish(self, key, future, start, span, task) -> None:
        """Done-callback of one evaluation: publish, uncount, resolve."""
        exc, result = self._task_outcome(task)
        if exc is not None:
            with self._gate:
                self._inflight.pop(key, None)
            self.stats.record_done(time.perf_counter() - start, error=True)
            span.finish(error=True)
            self._resolve(future, exc=exc)
            return
        self.cache.put(key, result)
        with self._gate:
            self._inflight.pop(key, None)
        self.stats.record_done(time.perf_counter() - start)
        span.finish()
        self._resolve(future, result=result)

    def _finish_attached(self, start, future) -> None:
        """Done-callback of a deduplicated request's attached future."""
        error = future.cancelled() or future.exception() is not None
        self.stats.record_attached_done(
            time.perf_counter() - start, error=error
        )

    def _finish_batch(self, items, start, task) -> None:
        """Done-callback of one grouped evaluation: resolve every member."""
        exc, results = self._task_outcome(task)
        if exc is not None:
            for key, future in items:
                with self._gate:
                    self._inflight.pop(key, None)
                self.stats.record_done(
                    time.perf_counter() - start, error=True
                )
                self._resolve(future, exc=exc)
            return
        for (key, future), result in zip(items, results):
            self.cache.put(key, result)
            with self._gate:
                self._inflight.pop(key, None)
            self.stats.record_done(time.perf_counter() - start)
            self._resolve(future, result=result)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Service counters + latency quantiles + cache occupancy.

        Also merges the process-wide metrics registry's snapshot, so
        one call surfaces the engine's stage/store/estimator series
        next to the serving counters (every registry key is
        ``repro_``-prefixed; no collisions with the service keys).
        """
        snap = self.stats.snapshot()
        snap["cache_size"] = len(self.cache)
        snap["cache_capacity"] = self.cache.capacity
        snap["num_workers"] = self.num_workers
        snap["executor"] = self.executor_kind
        snap["warm_started"] = self.warm_started
        planner = getattr(self.engine, "planner", None)
        if planner is not None:
            snap.update(planner.stats_snapshot())
        snap.update(self.metrics_registry.snapshot())
        return snap

    def apply_updates(self, ops, log=None) -> dict:
        """Absorb a batch of PEG mutations with versioned invalidation.

        Admission is paused, every in-flight evaluation is drained, and
        only then is the mutation batch applied to the shared engine
        (:meth:`repro.query.engine.QueryEngine.apply_updates`) — graph
        surgery never overlaps an evaluation. The engine's
        ``graph_version`` bump re-keys all subsequent requests, so once
        this method returns no cached or deduplicated pre-mutation
        result can be served again; stale entries age out of the LRU on
        their own. Requests submitted concurrently with the update
        block briefly in admission and then run against (and are cached
        under) the post-update graph.

        Only thread-executor services support live updates: process
        pool workers hold their own warm-started engine copies, which a
        mutation here would silently not reach.
        """
        if self.executor_kind == "process":
            raise ServiceError(
                "live updates require executor='thread': process pool "
                "workers hold independent engine copies"
            )
        with self._apply_lock:
            with self._gate:
                if self._closed:
                    raise ServiceError("service is closed")
                self._applying = True
                pending = list(self._inflight.values())
            try:
                for future in pending:
                    try:
                        # Holding _apply_lock across the drain IS the
                        # pause; workers never take _apply_lock, and
                        # each future is bounded by its own evaluation.
                        future.result()  # lint-ok: REP211 drain-by-design
                    except Exception:
                        pass  # delivered to its own waiters
                return self.engine.apply_updates(ops, log=log)
            finally:
                with self._gate:
                    self._applying = False
                    self._apply_done.notify_all()

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        Idempotent. Submits racing the close either fail in admission
        with :class:`ServiceError` or — when they reached the executor
        first — run to completion (``wait=True``) or are cancelled and
        resolved with :class:`ServiceError` (``wait=False``). Either
        way the single-flight table is left empty and every registered
        future is completed, so no deduplicated waiter can hang on a
        request that will never run.
        """
        with self._gate:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
        if already:
            return
        planner = getattr(self.engine, "planner", None)
        if planner is not None and self.stats in planner.listeners:
            planner.listeners.remove(self.stats)
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
        with self._gate:
            leftover = list(self._inflight.items())
            self._inflight.clear()
        for _key, future in leftover:
            self._resolve(
                future,
                exc=ServiceError("service closed before the request completed"),
            )

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryService(workers={self.num_workers}, "
            f"cache={len(self.cache)}/{self.cache.capacity}, "
            f"warm_started={self.warm_started})"
        )
