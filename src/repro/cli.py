"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Build a synthetic / DBLP-like / IMDB-like PEG and save it to disk.
``info``
    Print the statistics of a saved PEG (nodes, edges, components, ...).
``query``
    Run a pattern query (JSON spec) against a saved PEG; ``--trace``
    prints the span tree of the evaluation (plan, per-partition index
    lookups with shard fetch counters, link build, reduction rounds,
    matching) and ``--shards`` evaluates against a hash-sharded index.
``metrics``
    Run a query workload and print the process metrics registry in
    Prometheus text exposition format — stage latency histograms,
    store read counters, estimator error, plan-cache hits.
``plan``
    Print the decomposition the adaptive planner chooses for a query —
    paths, per-path cardinality estimates, estimated cost and plan
    provenance (greedy/exact/random/cache) — without executing it;
    repeated runs demonstrate the plan cache.
``build``
    Run the offline phase ahead of time: build the (optionally
    hash-sharded, optionally process-parallel) path index and context
    tables and persist them as an offline bundle.
``apply-updates``
    Apply a batch of live-graph mutations (JSON ops) to a saved PEG —
    and, when an offline bundle is given, to its index via the delta
    overlay (re-enumerating only dirty neighborhoods) with compaction,
    instead of a full rebuild. Ops can be appended to a durable
    mutation log for idempotent replay.
``serve``
    Serve a batch of queries through the concurrent
    :class:`~repro.service.QueryService` (result cache, single-flight
    dedup), warm-starting from / writing an offline snapshot; with
    ``--shards`` the index is hash-sharded, with ``--batch`` each
    workload round is submitted as one grouped evaluation; with
    ``--listen HOST:PORT`` the service is exposed over the network
    through the fault-tolerant asyncio front end (:mod:`repro.net`)
    instead of draining a workload file.
``client``
    Send a query (or ping / stats probe) to a running
    ``serve --listen`` server, with timeouts, bounded retry and a
    circuit breaker.
``bench-serve``
    Measure serving latency and throughput (cache hits, worker
    scaling, repeated workloads).

The query spec is a JSON object::

    {
      "nodes": {"a": "DB", "b": "ML", "c": "DB"},
      "edges": [["a", "b"], ["b", "c"]]
    }

Example session::

    python -m repro generate --kind dblp --size 300 --out dblp.peg
    python -m repro info dblp.peg
    python -m repro query dblp.peg --spec query.json --alpha 0.1 --explain
    python -m repro serve dblp.peg --snapshot dblp.idx \\
        --queries workload.jsonl --stats

The first ``serve`` run builds the offline phase and writes the
snapshot; later runs restore it in milliseconds (warm start). The
``serve`` workload file holds one query spec per line (JSON lines) or
one JSON list of specs; each spec may carry its own ``"alpha"``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.datasets import (
    SyntheticConfig,
    generate_dblp_pgd,
    generate_imdb_pgd,
    generate_synthetic_pgd,
)
from repro.peg import build_peg, load_peg, save_peg
from repro.query import QueryEngine, QueryGraph, QueryOptions, explain
from repro.utils.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Probabilistic subgraph pattern matching over uncertain graphs "
            "with identity linkage uncertainty (ICDE 2014 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a dataset and save its PEG"
    )
    generate.add_argument(
        "--kind",
        choices=("synthetic", "dblp", "imdb"),
        default="synthetic",
        help="dataset family (default: synthetic)",
    )
    generate.add_argument(
        "--size", type=int, default=400,
        help="number of references/authors/actors (default: 400)",
    )
    generate.add_argument(
        "--uncertainty", type=float, default=0.2,
        help="fraction of uncertain elements, synthetic only (default 0.2)",
    )
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--out", required=True, help="output path for the PEG file"
    )

    info = commands.add_parser("info", help="print PEG statistics")
    info.add_argument("peg", help="path to a saved PEG")

    query = commands.add_parser(
        "query", help="run a pattern query against a saved PEG"
    )
    query.add_argument("peg", help="path to a saved PEG")
    spec_group = query.add_mutually_exclusive_group(required=True)
    spec_group.add_argument(
        "--spec",
        help="path to the JSON query spec (see module docstring)",
    )
    spec_group.add_argument(
        "--pattern",
        help=(
            "inline pattern, e.g. '(a:DB)-(b:ML)-(c:DB); (a)-(c)' "
            "(see repro.query.pattern)"
        ),
    )
    query.add_argument("--alpha", type=float, default=0.5)
    query.add_argument("--max-length", type=int, default=2, dest="max_length")
    query.add_argument("--beta", type=float, default=0.05)
    query.add_argument(
        "--decomposition",
        choices=("greedy", "exact", "random"),
        default="greedy",
    )
    query.add_argument(
        "--link-backend",
        choices=("vectorized", "python"),
        default="vectorized",
        dest="link_backend",
        help=(
            "candidate-link construction: vectorized CSR arrays "
            "(default) or the per-vertex Python reference"
        ),
    )
    query.add_argument(
        "--explain", action="store_true",
        help="print the full evaluation report instead of matches only",
    )
    query.add_argument(
        "--limit", type=int, default=20,
        help="maximum matches printed (default 20)",
    )
    query.add_argument(
        "--trace", action="store_true",
        help=(
            "record and print the evaluation's span tree (stage "
            "latencies, per-partition lookup and shard-fetch counters)"
        ),
    )
    query.add_argument(
        "--shards", type=int, default=0,
        help=(
            "evaluate against a hash-sharded in-memory index "
            "(0 = monolithic, default)"
        ),
    )

    metrics = commands.add_parser(
        "metrics",
        help=(
            "run a query workload and print the metrics registry in "
            "Prometheus text exposition format"
        ),
    )
    metrics.add_argument("peg", help="path to a saved PEG")
    metrics_spec = metrics.add_mutually_exclusive_group(required=True)
    metrics_spec.add_argument(
        "--spec", help="path to the JSON query spec (see module docstring)"
    )
    metrics_spec.add_argument(
        "--pattern",
        help="inline pattern, e.g. '(a:DB)-(b:ML)-(c:DB); (a)-(c)'",
    )
    metrics.add_argument("--alpha", type=float, default=0.5)
    metrics.add_argument("--max-length", type=int, default=2, dest="max_length")
    metrics.add_argument("--beta", type=float, default=0.05)
    metrics.add_argument(
        "--repeat", type=int, default=3,
        help=(
            "evaluate the query this many times before exporting "
            "(default 3: populates the latency histograms and "
            "demonstrates the plan cache)"
        ),
    )

    plan = commands.add_parser(
        "plan",
        help=(
            "print the chosen path decomposition and its estimated cost "
            "without executing the query (EXPLAIN without ANALYZE)"
        ),
    )
    plan.add_argument("peg", help="path to a saved PEG")
    plan_spec = plan.add_mutually_exclusive_group(required=True)
    plan_spec.add_argument(
        "--spec", help="path to the JSON query spec (see module docstring)"
    )
    plan_spec.add_argument(
        "--pattern",
        help="inline pattern, e.g. '(a:DB)-(b:ML)-(c:DB); (a)-(c)'",
    )
    plan.add_argument("--alpha", type=float, default=0.5)
    plan.add_argument("--max-length", type=int, default=2, dest="max_length")
    plan.add_argument("--beta", type=float, default=0.05)
    plan.add_argument(
        "--strategy",
        choices=("greedy", "exact", "random"),
        default="greedy",
        help="decomposition strategy (default: greedy)",
    )
    plan.add_argument(
        "--repeat", type=int, default=2,
        help=(
            "plan this many times (default 2: the second run "
            "demonstrates the plan-cache hit)"
        ),
    )

    build = commands.add_parser(
        "build",
        help="build the offline bundle (index + context) for later serving",
    )
    build.add_argument("peg", help="path to a saved PEG")
    build.add_argument(
        "--out", required=True,
        help="output directory for the offline bundle",
    )
    build.add_argument("--max-length", type=int, default=2, dest="max_length")
    build.add_argument("--beta", type=float, default=0.05)
    build.add_argument("--gamma", type=float, default=0.1)
    build.add_argument(
        "--shards", type=int, default=0,
        help="hash shards for the path index (0 = monolithic, default)",
    )
    build.add_argument(
        "--build-processes", type=int, default=0, dest="build_processes",
        help=(
            "process-pool workers for the parallel sharded build "
            "(requires --shards; 0 builds in-process)"
        ),
    )

    apply_updates = commands.add_parser(
        "apply-updates",
        help=(
            "apply live-graph mutations to a saved PEG (and its offline "
            "bundle) without a full rebuild"
        ),
    )
    apply_updates.add_argument("peg", help="path to a saved PEG")
    apply_updates.add_argument(
        "--ops", required=True,
        help=(
            "mutation ops file (JSON lines or one JSON list); each op is "
            'e.g. {"op": "add_edge", "refs_a": [1], "refs_b": [2], '
            '"edge": 0.8} — see repro.delta.ops'
        ),
    )
    apply_updates.add_argument(
        "--out",
        help="where to save the mutated PEG (default: overwrite the input)",
    )
    apply_updates.add_argument(
        "--snapshot",
        help=(
            "offline-bundle directory to update through the delta overlay; "
            "must exist (build it first with `build` or `serve`)"
        ),
    )
    apply_updates.add_argument(
        "--log", dest="mutation_log",
        help=(
            "append the ops to this durable mutation log before applying "
            "(replay skips already-applied sequence numbers)"
        ),
    )
    apply_updates.add_argument(
        "--no-compact", action="store_true",
        help=(
            "skip folding the delta into the bundle stores (only allowed "
            "without --snapshot: an updated bundle must be compacted "
            "before it can be persisted)"
        ),
    )

    serve = commands.add_parser(
        "serve",
        help="serve a query workload concurrently with caching + snapshots",
    )
    serve.add_argument("peg", help="path to a saved PEG")
    serve.add_argument(
        "--snapshot",
        help=(
            "offline-bundle directory: restored when present (warm start), "
            "otherwise built and written (cold start)"
        ),
    )
    serve.add_argument(
        "--queries",
        help="workload file (JSON lines or one JSON list); default: stdin",
    )
    serve.add_argument("--alpha", type=float, default=0.5)
    serve.add_argument("--max-length", type=int, default=2, dest="max_length")
    serve.add_argument("--beta", type=float, default=0.05)
    serve.add_argument(
        "--workers", type=int, default=4, help="evaluation threads (default 4)"
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, dest="cache_size",
        help="result-cache entries, 0 disables (default 256)",
    )
    serve.add_argument(
        "--repeat", type=int, default=1,
        help="serve the workload this many times (exercises the cache)",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="hash shards for a cold-start index build (0 = monolithic)",
    )
    serve.add_argument(
        "--build-processes", type=int, default=0, dest="build_processes",
        help="process-pool workers for a cold-start sharded build",
    )
    serve.add_argument(
        "--batch", action="store_true",
        help=(
            "submit each workload round as one grouped evaluation "
            "(shared index fetches) instead of independent requests"
        ),
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="print the service stats snapshot after draining the workload",
    )
    serve.add_argument(
        "--metrics-every", type=int, default=0, dest="metrics_every",
        help=(
            "print a one-line metrics snapshot (requests, hit rate, "
            "p50/p95, store reads) after every N workload rounds "
            "(0 = never, default)"
        ),
    )
    serve.add_argument(
        "--listen", metavar="HOST:PORT",
        help=(
            "serve over the network instead of from a workload file: "
            "bind the asyncio front end (admission control, deadlines, "
            "load shedding) on HOST:PORT and run until interrupted "
            "(port 0 picks an ephemeral port)"
        ),
    )
    serve.add_argument(
        "--max-pending", type=int, default=64, dest="max_pending",
        help="network admission queue bound before shedding (default 64)",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None,
        dest="default_deadline_ms",
        help="deadline applied to network requests that carry none",
    )

    client = commands.add_parser(
        "client",
        help="query a running `serve --listen` server over the network",
    )
    client.add_argument("address", metavar="HOST:PORT")
    client.add_argument("--spec", help="query spec JSON file")
    client.add_argument("--alpha", type=float, default=0.5)
    client.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        help="per-request deadline in milliseconds",
    )
    client.add_argument(
        "--timeout", type=float, default=30.0,
        help="request timeout in seconds (default 30)",
    )
    client.add_argument(
        "--ping", action="store_true", help="round-trip a ping and exit"
    )
    client.add_argument(
        "--stats", action="store_true",
        help="print the server's stats snapshot and exit",
    )

    lint = commands.add_parser(
        "lint",
        help="run the repro.analysis invariant linter over source paths",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any unsuppressed diagnostic",
    )
    lint.add_argument(
        "--json", dest="json_out", metavar="FILE",
        help="also write the machine-readable report to FILE ('-' = stdout)",
    )
    lint.add_argument(
        "--select", action="append", metavar="NAME_OR_CODE",
        help="run only the named checkers / codes (repeatable)",
    )
    lint.add_argument(
        "--list-codes", action="store_true", dest="list_codes",
        help="print every diagnostic code with its description and exit",
    )
    lint.add_argument(
        "--call-graph", metavar="FILE", dest="call_graph",
        help="dump the flow checkers' resolved call graph as JSON "
             "('-' = stdout) and exit",
    )

    bench = commands.add_parser(
        "bench-serve",
        help="measure serving latency/throughput (cache, workers, dedup)",
    )
    bench.add_argument(
        "--size", type=int, default=120,
        help="synthetic graph references (default 120)",
    )
    bench.add_argument("--alpha", type=float, default=0.5)
    bench.add_argument("--max-length", type=int, default=2, dest="max_length")
    bench.add_argument("--beta", type=float, default=0.1)
    bench.add_argument(
        "--distinct", type=int, default=6,
        help="distinct queries in the workload (default 6)",
    )
    bench.add_argument(
        "--copies", type=int, default=4,
        help="renamed duplicates per distinct query (default 4)",
    )
    bench.add_argument(
        "--workers", type=int, default=4,
        help="workers in the multi-worker runs (default 4)",
    )
    bench.add_argument(
        "--snapshot",
        help="bundle directory to reuse (default: a temporary directory)",
    )
    return parser


def _cmd_generate(args) -> int:
    if args.kind == "synthetic":
        pgd = generate_synthetic_pgd(
            SyntheticConfig(
                num_references=args.size,
                uncertainty=args.uncertainty,
                seed=args.seed,
            )
        )
    elif args.kind == "dblp":
        pgd = generate_dblp_pgd(num_authors=args.size, seed=args.seed)
    else:
        pgd = generate_imdb_pgd(num_actors=args.size, seed=args.seed)
    peg = build_peg(pgd)
    save_peg(peg, args.out)
    stats = peg.stats()
    print(
        f"wrote {args.out}: {stats['nodes']} entities, "
        f"{stats['edges']} edges, {stats['nontrivial_components']} "
        f"uncertain identity components"
    )
    return 0


def _cmd_info(args) -> int:
    peg = load_peg(args.peg)
    for key, value in peg.stats().items():
        print(f"{key:24s}{value}")
    labels = sorted(peg.sigma, key=repr)
    print(f"{'label alphabet':24s}{', '.join(map(str, labels))}")
    return 0


def _load_query_spec(path: str) -> QueryGraph:
    from repro.net.protocol import query_graph_from_spec

    with open(path, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    try:
        return query_graph_from_spec(spec)
    except ReproError as exc:
        raise ReproError(f"{path!r}: {exc}") from exc


def _cmd_query(args) -> int:
    peg = load_peg(args.peg)
    if args.pattern is not None:
        from repro.query.pattern import parse_pattern

        query = parse_pattern(args.pattern)
    else:
        query = _load_query_spec(args.spec)
    engine = QueryEngine(
        peg,
        max_length=args.max_length,
        beta=args.beta,
        num_shards=args.shards,
    )
    options = QueryOptions(
        decomposition=args.decomposition,
        link_backend=args.link_backend,
        trace=args.trace,
    )
    result = engine.query(query, args.alpha, options)
    if args.explain:
        print(explain(result, max_matches=args.limit))
    else:
        print(f"{len(result.matches)} matches (alpha={args.alpha})")
        for match in result.matches[: args.limit]:
            rendered = ", ".join(
                "{" + ",".join(str(r) for r in sorted(entity, key=str)) + "}"
                f":{label}"
                for entity, label in match.nodes
            )
            print(f"  Pr={match.probability:.4f}  {rendered}")
        if len(result.matches) > args.limit:
            print(f"  ... {len(result.matches) - args.limit} more")
    if args.trace and result.trace is not None:
        from repro.obs import render_trace

        print()
        print(render_trace(result.trace))
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs import get_registry

    peg = load_peg(args.peg)
    if args.pattern is not None:
        from repro.query.pattern import parse_pattern

        query = parse_pattern(args.pattern)
    else:
        query = _load_query_spec(args.spec)
    engine = QueryEngine(peg, max_length=args.max_length, beta=args.beta)
    for _ in range(max(1, args.repeat)):
        engine.query(query, args.alpha)
    print(get_registry().render_prometheus())
    return 0


def _cmd_plan(args) -> int:
    import time

    if not 0.0 < args.alpha <= 1.0:
        raise ReproError(f"alpha must be in (0, 1], got {args.alpha}")
    peg = load_peg(args.peg)
    if args.pattern is not None:
        from repro.query.pattern import parse_pattern

        query = parse_pattern(args.pattern)
    else:
        query = _load_query_spec(args.spec)
    engine = QueryEngine(peg, max_length=args.max_length, beta=args.beta)
    options = QueryOptions(
        decomposition=args.strategy,
        seed=0 if args.strategy == "random" else None,
    )
    for round_num in range(max(1, args.repeat)):
        start = time.perf_counter()
        decomposition, info = engine.planner.plan(query, args.alpha, options)
        elapsed = (time.perf_counter() - start) * 1000
        source = "cache" if info.cached else info.source
        print(
            f"[{round_num + 1}] strategy={info.strategy} source={source}  "
            f"estimated cost {info.estimated_cost:.4g}  "
            f"planned in {elapsed:.2f} ms"
        )
        for i, path in enumerate(decomposition.paths):
            labels = query.label_sequence(path.nodes)
            rendered = " - ".join(
                f"{node}:{label}" for node, label in zip(path.nodes, labels)
            )
            estimate = engine.index.estimate_cardinality(labels, args.alpha)
            print(f"    P{i}: {rendered}  (est. cardinality {estimate:.4g})")
    stats = engine.planner.stats_snapshot()
    print(
        f"plan cache: {stats['plan_cache_hits']} hits, "
        f"{stats['plan_cache_misses']} misses, "
        f"{stats['plan_cache_size']} entries"
    )
    return 0


def _cmd_build(args) -> int:
    if args.build_processes > 1 and not args.shards:
        raise ReproError("--build-processes requires --shards")
    peg = load_peg(args.peg)
    # A reused output directory must not leak an earlier build's data
    # into the fresh store.
    from repro.index.bundle import clear_offline_artifacts

    clear_offline_artifacts(args.out)
    store = None
    if not args.shards:
        from repro.storage.kvstore import DiskPathStore

        store = DiskPathStore(args.out)
    engine = QueryEngine(
        peg,
        max_length=args.max_length,
        beta=args.beta,
        gamma=args.gamma,
        store=store,
        num_shards=args.shards,
        shard_directory=args.out if args.shards else None,
        build_processes=args.build_processes,
    )
    engine.save_offline(args.out)
    stats = engine.offline_stats()
    shape = (
        f"{args.shards} shards" if args.shards else "monolithic index"
    )
    print(
        f"wrote offline bundle to {args.out} ({shape}, "
        f"L={args.max_length}, beta={args.beta}, gamma={args.gamma})"
    )
    for key in ("sequences", "paths", "size_bytes", "offline_seconds"):
        print(f"  {key:18s}{stats[key]}")
    return 0


def _load_ops(path: str):
    """Parse a mutation-ops file: JSON lines or one JSON list of specs."""
    from repro.delta import op_from_json

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read().strip()
    if not text:
        return []
    if text.startswith("["):
        specs = json.loads(text)
    else:
        specs = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    return [op_from_json(spec) for spec in specs]


def _cmd_apply_updates(args) -> int:
    from repro.delta import MutationLog
    from repro.index.bundle import load_offline
    from repro.query.engine import QueryEngine

    if args.no_compact and args.snapshot:
        raise ReproError(
            "--no-compact requires omitting --snapshot: an updated bundle "
            "must be compacted before it can be persisted"
        )
    peg = load_peg(args.peg)
    ops = _load_ops(args.ops)
    if not ops:
        print("no ops to apply")
        return 0
    if args.snapshot:
        index, context = load_offline(args.snapshot)
        engine = QueryEngine(peg, _precomputed=(index, context))
    else:
        # No bundle to maintain: a throwaway minimal index still lets
        # the delta layer validate and version the mutations.
        engine = QueryEngine(peg, max_length=1, beta=0.5)
    log = MutationLog(args.mutation_log) if args.mutation_log else None
    try:
        summary = engine.apply_updates(ops, log=log)
        print(
            f"applied {summary['applied']} ops "
            f"({summary['dirty_nodes']} dirty nodes, "
            f"graph version {summary['graph_version']})"
        )
        if not args.no_compact:
            stats = engine.compact_updates()
            print(
                f"compacted: {stats['sequences_rewritten']} sequences "
                f"rewritten, {stats['paths_dropped']} stale paths dropped, "
                f"{stats['paths_added']} paths added"
            )
        if args.snapshot:
            engine.save_offline(args.snapshot)
            print(f"updated offline bundle at {args.snapshot}")
    finally:
        if log is not None:
            log.close()
    out = args.out or args.peg
    save_peg(peg, out)
    print(f"wrote updated PEG to {out}")
    return 0


def _load_workload(path: str | None) -> list:
    """Parse a serve workload: JSON lines or one JSON list of specs."""
    if path is None:
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    text = text.strip()
    if not text:
        return []
    if text.startswith("["):
        specs = json.loads(text)
    else:
        specs = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    from repro.net.protocol import query_graph_from_spec

    workload = []
    for spec in specs:
        try:
            query = query_graph_from_spec(spec)
        except ReproError as exc:
            raise ReproError(f"workload entry rejected: {exc}") from exc
        workload.append((query, spec.get("alpha")))
    return workload


def _parse_address(address: str) -> tuple:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(
            f"address must be HOST:PORT, got {address!r}"
        )
    return host or "127.0.0.1", int(port)


def _cmd_serve(args) -> int:
    from repro.service import QueryService

    if args.build_processes > 1 and not args.shards:
        raise ReproError("--build-processes requires --shards")
    if args.build_processes > 1 and not args.snapshot:
        raise ReproError(
            "--build-processes needs --snapshot: the parallel sharded "
            "build exchanges data through the snapshot directory"
        )
    peg = load_peg(args.peg)
    # Network mode serves requests from sockets, not a workload file
    # (reading stdin for one would block forever).
    workload = [] if args.listen else _load_workload(args.queries)
    if args.snapshot:
        service = QueryService.open(
            peg,
            args.snapshot,
            max_length=args.max_length,
            beta=args.beta,
            num_workers=args.workers,
            cache_size=args.cache_size,
            num_shards=args.shards,
            build_processes=args.build_processes,
        )
        if service.warm_started:
            index = service.engine.index
            print(
                f"warm start: restored offline bundle from {args.snapshot} "
                f"(L={index.max_length}, beta={index.beta}; "
                "snapshot parameters override --max-length/--beta)"
            )
        else:
            print(f"cold start: built offline phase, snapshot -> {args.snapshot}")
    else:
        service = QueryService.build(
            peg,
            max_length=args.max_length,
            beta=args.beta,
            num_workers=args.workers,
            cache_size=args.cache_size,
            num_shards=args.shards,
            build_processes=args.build_processes,
        )
        print("cold start: built offline phase (no snapshot directory)")
    if args.listen:
        import threading

        from repro.net import start_server

        host, port = _parse_address(args.listen)
        with service:
            handle = start_server(
                service,
                host,
                port,
                max_pending=args.max_pending,
                default_deadline_ms=args.default_deadline_ms,
            )
            bound_host, bound_port = handle.address
            print(f"serving on {bound_host}:{bound_port} (Ctrl-C to stop)")
            sys.stdout.flush()
            try:
                threading.Event().wait()
            except KeyboardInterrupt:
                print("draining...")
            finally:
                handle.stop()
            if args.stats:
                for key, value in sorted(service.stats_snapshot().items()):
                    print(f"{key:20s}{value}")
        return 0
    with service:
        for round_num in range(args.repeat):
            if args.batch:
                requests = [
                    (query, args.alpha if alpha is None else alpha)
                    for query, alpha in workload
                ]
                futures = list(
                    enumerate(service.submit_batch(requests))
                )
            else:
                futures = [
                    (
                        i,
                        service.submit(
                            query, args.alpha if alpha is None else alpha
                        ),
                    )
                    for i, (query, alpha) in enumerate(workload)
                ]
            for i, future in futures:
                result = future.result()
                print(f"[round {round_num + 1}] query {i}: "
                      f"{len(result.matches)} matches")
            if args.metrics_every and (round_num + 1) % args.metrics_every == 0:
                snap = service.stats_snapshot()
                print(
                    f"[metrics] requests={snap['requests']} "
                    f"hit_rate={snap['hit_rate']:.2f} "
                    f"p50={snap['latency_p50'] * 1e3:.2f}ms "
                    f"p95={snap['latency_p95'] * 1e3:.2f}ms "
                    f"store_reads={snap.get('repro_store_reads_total', 0)}"
                )
        if args.stats:
            for key, value in sorted(service.stats_snapshot().items()):
                print(f"{key:20s}{value}")
    return 0


def _cmd_client(args) -> int:
    from repro.net import QueryClient

    host, port = _parse_address(args.address)
    with QueryClient(host, port, request_timeout=args.timeout) as client:
        if args.ping:
            print("pong" if client.ping() else "no pong")
            return 0
        if args.stats:
            for key, value in sorted(client.stats().items()):
                print(f"{key:24s}{value}")
            return 0
        if not args.spec:
            raise ReproError("client needs --spec (or --ping / --stats)")
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        if not isinstance(spec, dict):
            raise ReproError(f"{args.spec!r} must contain a JSON object")
        reply = client.query(
            spec.get("nodes", {}),
            spec.get("edges", ()),
            alpha=spec.get("alpha", args.alpha),
            deadline_ms=args.deadline_ms,
        )
        print(f"{reply['num_matches']} matches (alpha="
              f"{spec.get('alpha', args.alpha)})")
        for match in reply["matches"]:
            rendered = ", ".join(
                "{" + ",".join(str(r) for r in refs) + "}" + f":{label}"
                for refs, label in match["nodes"]
            )
            print(f"  Pr={match['probability']:.4f}  {rendered}")
    return 0


def _cmd_bench_serve(args) -> int:
    import tempfile

    from repro.service.bench import run_serve_benchmark

    def run(directory: str) -> int:
        report = run_serve_benchmark(
            directory,
            num_references=args.size,
            alpha=args.alpha,
            max_length=args.max_length,
            beta=args.beta,
            num_distinct=args.distinct,
            copies=args.copies,
            multi_workers=args.workers,
        )
        print(report.render())
        return 0

    if args.snapshot:
        return run(args.snapshot)
    with tempfile.TemporaryDirectory() as directory:
        return run(directory)


def _cmd_lint(args) -> int:
    from repro.analysis.runner import main as analysis_main

    argv = list(args.paths)
    if args.strict:
        argv.append("--strict")
    if args.json_out:
        argv.extend(["--json", args.json_out])
    for item in args.select or ():
        argv.extend(["--select", item])
    if args.list_codes:
        argv.append("--list-codes")
    if getattr(args, "call_graph", None):
        argv.extend(["--call-graph", args.call_graph])
    return analysis_main(argv)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "info": _cmd_info,
        "query": _cmd_query,
        "metrics": _cmd_metrics,
        "plan": _cmd_plan,
        "build": _cmd_build,
        "apply-updates": _cmd_apply_updates,
        "serve": _cmd_serve,
        "client": _cmd_client,
        "bench-serve": _cmd_bench_serve,
        "lint": _cmd_lint,
    }
    if args.command in ("serve", "client"):
        # Chaos testing: REPRO_FAULTS / REPRO_FAULTS_SEED arm the
        # fault-injection sites before any serving work starts.
        from repro.testing import faults

        faults.install_from_env()
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: invalid JSON in input: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pipe (e.g. `repro serve ... | head`) closed early.
        # Redirect stdout to devnull so the interpreter's exit-time
        # flush does not raise again, and exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
